#include "bigint/bigint.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "obs/obs.hpp"
#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::num {

namespace {

using util::u128;
using Limb = BigInt::Limb;

constexpr std::size_t kKaratsubaThreshold = 24;  // limbs
constexpr unsigned kLimbBits = BigInt::kLimbBits;

// Promotion-rate meters (see docs/PERFORMANCE.md).  Both gate on
// obs::enabled() at the call site so an untraced run pays one relaxed
// atomic load per op, and CCMX_OBS=OFF compiles them out entirely.
const obs::Counter g_small_ops("bigint.small_ops");
const obs::Counter g_promotions("bigint.promotions");

inline void note_small_op() noexcept {
  if (obs::enabled()) g_small_ops.add();
}

[[nodiscard]] constexpr Limb lo64(u128 v) noexcept {
  return static_cast<Limb>(v);
}
[[nodiscard]] constexpr Limb hi64(u128 v) noexcept {
  return static_cast<Limb>(v >> 64);
}

[[nodiscard]] constexpr std::uint64_t mag_of_i64(std::int64_t v) noexcept {
  // Avoid UB on INT64_MIN by negating in unsigned space.
  return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
               : static_cast<std::uint64_t>(v);
}

void trim_vec(std::vector<Limb>& v) noexcept {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

// ------------------------------------------------------------------ kernels
//
// The magnitude kernels read raw (pointer, count) spans so inline and heap
// operands share one code path, and the inner loops are plain carry chains
// over 64-bit limbs with 128-bit intermediates — branch-light and
// index-free enough for the compiler to keep them in registers.

int cmp_mag(const Limb* a, std::size_t an, const Limb* b,
            std::size_t bn) noexcept {
  if (an != bn) return an < bn ? -1 : 1;
  for (std::size_t i = an; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<Limb> add_mag(const Limb* a, std::size_t an, const Limb* b,
                          std::size_t bn) {
  if (an < bn) {
    std::swap(a, b);
    std::swap(an, bn);
  }
  std::vector<Limb> out;
  out.reserve(an + 1);
  Limb carry = 0;
  std::size_t i = 0;
  for (; i < bn; ++i) {
    const u128 sum = static_cast<u128>(a[i]) + b[i] + carry;
    out.push_back(lo64(sum));
    carry = hi64(sum);
  }
  for (; i < an; ++i) {
    const Limb sum = a[i] + carry;
    carry = static_cast<Limb>(sum < carry);
    out.push_back(sum);
  }
  if (carry != 0) out.push_back(carry);
  return out;
}

// requires |a| >= |b|
std::vector<Limb> sub_mag(const Limb* a, std::size_t an, const Limb* b,
                          std::size_t bn) {
  CCMX_ASSERT(cmp_mag(a, an, b, bn) >= 0);
  std::vector<Limb> out;
  out.reserve(an);
  Limb borrow = 0;
  std::size_t i = 0;
  for (; i < bn; ++i) {
    const Limb bi = b[i];
    const Limb diff = a[i] - bi - borrow;
    // Borrow-out: a < b + borrow, detected in unsigned space.
    borrow = static_cast<Limb>((a[i] < bi) | ((a[i] == bi) & borrow));
    out.push_back(diff);
  }
  for (; i < an; ++i) {
    const Limb diff = a[i] - borrow;
    borrow = static_cast<Limb>(a[i] < borrow);
    out.push_back(diff);
  }
  trim_vec(out);
  return out;
}

std::vector<Limb> mul_school(const Limb* a, std::size_t an, const Limb* b,
                             std::size_t bn) {
  std::vector<Limb> out(an + bn, 0);
  for (std::size_t i = 0; i < an; ++i) {
    if (a[i] == 0) continue;
    const u128 ai = a[i];
    Limb carry = 0;
    for (std::size_t j = 0; j < bn; ++j) {
      const u128 cur = static_cast<u128>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = lo64(cur);
      carry = hi64(cur);
    }
    out[i + bn] = carry;  // position untouched by lower rows
  }
  trim_vec(out);
  return out;
}

std::vector<Limb> mul_karatsuba(const std::vector<Limb>& a,
                                const std::vector<Limb>& b) {
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return mul_school(a.data(), a.size(), b.data(), b.size());
  }
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto split = [half](const std::vector<Limb>& v)
      -> std::pair<std::vector<Limb>, std::vector<Limb>> {
    if (v.size() <= half) return {v, {}};
    std::vector<Limb> lo(v.begin(),
                         v.begin() + static_cast<std::ptrdiff_t>(half));
    std::vector<Limb> hi(v.begin() + static_cast<std::ptrdiff_t>(half),
                         v.end());
    trim_vec(lo);
    return {std::move(lo), std::move(hi)};
  };
  auto [a_lo, a_hi] = split(a);
  auto [b_lo, b_hi] = split(b);

  std::vector<Limb> z0 = mul_karatsuba(a_lo, b_lo);
  std::vector<Limb> z2 = mul_karatsuba(a_hi, b_hi);
  std::vector<Limb> sum_a = add_mag(a_lo.data(), a_lo.size(), a_hi.data(),
                                    a_hi.size());
  std::vector<Limb> sum_b = add_mag(b_lo.data(), b_lo.size(), b_hi.data(),
                                    b_hi.size());
  std::vector<Limb> z1 = mul_karatsuba(sum_a, sum_b);
  z1 = sub_mag(z1.data(), z1.size(), z0.data(), z0.size());
  z1 = sub_mag(z1.data(), z1.size(), z2.data(), z2.size());

  std::vector<Limb> out(a.size() + b.size() + 1, 0);
  const auto accumulate = [&out](const std::vector<Limb>& part,
                                 std::size_t shift) {
    Limb carry = 0;
    std::size_t pos = shift;
    for (std::size_t i = 0; i < part.size(); ++i, ++pos) {
      const u128 cur = static_cast<u128>(out[pos]) + part[i] + carry;
      out[pos] = lo64(cur);
      carry = hi64(cur);
    }
    while (carry != 0) {
      const u128 cur = static_cast<u128>(out[pos]) + carry;
      out[pos] = lo64(cur);
      carry = hi64(cur);
      ++pos;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  trim_vec(out);
  return out;
}

std::vector<Limb> mul_mag(const Limb* a, std::size_t an, const Limb* b,
                          std::size_t bn) {
  if (an == 0 || bn == 0) return {};
  if (std::min(an, bn) < kKaratsubaThreshold) {
    return mul_school(a, an, b, bn);
  }
  return mul_karatsuba(std::vector<Limb>(a, a + an),
                       std::vector<Limb>(b, b + bn));
}

// Knuth TAOCP vol. 2, Algorithm D, base 2^64.
void divmod_mag(const Limb* num, std::size_t num_n, const Limb* den,
                std::size_t den_n, std::vector<Limb>& quot,
                std::vector<Limb>& rem) {
  CCMX_REQUIRE(den_n != 0, "division by zero");
  quot.clear();
  rem.clear();
  if (cmp_mag(num, num_n, den, den_n) < 0) {
    rem.assign(num, num + num_n);
    return;
  }
  if (den_n == 1) {
    const Limb d = den[0];
    quot.assign(num_n, 0);
    Limb r = 0;
    for (std::size_t i = num_n; i-- > 0;) {
      const u128 cur = (static_cast<u128>(r) << 64) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      r = static_cast<Limb>(cur % d);
    }
    trim_vec(quot);
    if (r != 0) rem.push_back(r);
    return;
  }

  // Normalize so the top limb of the divisor has its high bit set.
  const unsigned shift =
      util::narrow_cast<unsigned>(std::countl_zero(den[den_n - 1]));
  const auto shl = [](const Limb* p, std::size_t n, unsigned s) {
    std::vector<Limb> out(n + 1, 0);
    if (s == 0) {
      for (std::size_t i = 0; i < n; ++i) out[i] = p[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] |= p[i] << s;
        out[i + 1] |= p[i] >> (kLimbBits - s);
      }
    }
    trim_vec(out);
    return out;
  };
  std::vector<Limb> u = shl(num, num_n, shift);
  const std::vector<Limb> v = shl(den, den_n, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() >= n ? u.size() - n : 0;
  u.resize(num_n + 1 + (shift ? 1 : 0), 0);  // ensure u[m + n] exists
  if (u.size() < m + n + 1) u.resize(m + n + 1, 0);

  quot.assign(m + 1, 0);
  const Limb v_top = v[n - 1];
  const Limb v_second = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const u128 numerator = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 q_hat = numerator / v_top;
    u128 r_hat = numerator % v_top;
    while (q_hat >= (static_cast<u128>(1) << 64) ||
           q_hat * v_second >
               ((r_hat << 64) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= (static_cast<u128>(1) << 64)) break;
    }
    // Multiply-subtract q_hat * v from u[j .. j+n].
    const Limb q_word = lo64(q_hat);
    Limb borrow = 0;
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 product = static_cast<u128>(q_word) * v[i] + carry;
      carry = hi64(product);
      const Limb sub = lo64(product);
      const Limb ui = u[i + j];
      const Limb diff = ui - sub - borrow;
      borrow = static_cast<Limb>((ui < sub) | ((ui == sub) & borrow));
      u[i + j] = diff;
    }
    const Limb top = u[j + n];
    const Limb top_diff = top - carry - borrow;
    const bool went_negative = (top < carry) || (top == carry && borrow != 0);
    if (went_negative) {
      // q_hat was one too large: add back.
      u[j + n] = top_diff;
      quot[j] = q_word - 1;
      Limb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(u[i + j]) + v[i] + add_carry;
        u[i + j] = lo64(sum);
        add_carry = hi64(sum);
      }
      u[j + n] += add_carry;
    } else {
      u[j + n] = top_diff;
      quot[j] = q_word;
    }
  }

  trim_vec(quot);
  // Denormalize remainder: u[0..n-1] >> shift.
  rem.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i + 1 < rem.size(); ++i) {
      rem[i] = (rem[i] >> shift) | (rem[i + 1] << (kLimbBits - shift));
    }
    rem.back() >>= shift;
  }
  trim_vec(rem);
}

}  // namespace

// --------------------------------------------------- representation plumbing

void BigInt::swap(BigInt& other) noexcept {
  if (on_heap() && other.on_heap()) {
    heap_.swap(other.heap_);
  } else if (!on_heap() && !other.on_heap()) {
    std::swap(small_, other.small_);
  } else {
    BigInt& h = on_heap() ? *this : other;
    BigInt& s = on_heap() ? other : *this;
    std::vector<Limb> moved = std::move(h.heap_);
    h.heap_.~vector();
    ::new (&h.small_) std::array<Limb, kInlineLimbs>(s.small_);
    ::new (&s.heap_) std::vector<Limb>(std::move(moved));
  }
  std::swap(sign_, other.sign_);
  std::swap(tag_, other.tag_);
}

util::u128 BigInt::small_mag() const noexcept {
  CCMX_ASSERT(!on_heap());
  return (static_cast<u128>(small_[1]) << 64) | small_[0];
}

void BigInt::set_u128(util::u128 mag, int sign) noexcept {
  if (on_heap()) heap_.~vector();
  ::new (&small_) std::array<Limb, kInlineLimbs>{lo64(mag), hi64(mag)};
  tag_ = small_[1] != 0 ? 2u : (small_[0] != 0 ? 1u : 0u);
  sign_ = tag_ == 0 ? 0 : util::narrow_cast<std::int32_t>(sign);
}

void BigInt::adopt(std::vector<Limb>&& mag, int sign) {
  trim_vec(mag);
  if (mag.size() <= kInlineLimbs) {
    const Limb lo = mag.empty() ? 0 : mag[0];
    const Limb hi = mag.size() < 2 ? 0 : mag[1];
    set_u128((static_cast<u128>(hi) << 64) | lo, sign);
    return;
  }
  if (on_heap()) {
    heap_ = std::move(mag);
  } else {
    if (obs::enabled()) g_promotions.add();
    ::new (&heap_) std::vector<Limb>(std::move(mag));
    tag_ = kHeapTag;
  }
  sign_ = util::narrow_cast<std::int32_t>(sign);
}

BigInt::BigInt(std::int64_t value) noexcept : small_{mag_of_i64(value), 0} {
  tag_ = value != 0 ? 1u : 0u;
  sign_ = value == 0 ? 0 : (value < 0 ? -1 : 1);
}

// ------------------------------------------------------------------- parsing

BigInt BigInt::from_string(std::string_view text) {
  CCMX_REQUIRE(!text.empty(), "empty numeral");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  CCMX_REQUIRE(pos < text.size(), "sign without digits");
  // Fold 18 decimal digits (the largest power of ten fitting int64_t with
  // headroom) per word-sized multiply-add; word-sized results never
  // allocate.
  constexpr std::int64_t kPow10[19] = {
      1LL,
      10LL,
      100LL,
      1000LL,
      10000LL,
      100000LL,
      1000000LL,
      10000000LL,
      100000000LL,
      1000000000LL,
      10000000000LL,
      100000000000LL,
      1000000000000LL,
      10000000000000LL,
      100000000000000LL,
      1000000000000000LL,
      10000000000000000LL,
      100000000000000000LL,
      1000000000000000000LL};
  BigInt result;
  while (pos < text.size()) {
    const std::size_t take = std::min<std::size_t>(18, text.size() - pos);
    std::int64_t chunk = 0;
    for (std::size_t i = 0; i < take; ++i) {
      const char c = text[pos + i];
      CCMX_REQUIRE(c >= '0' && c <= '9', "non-decimal digit in numeral");
      chunk = chunk * 10 + (c - '0');
    }
    result *= kPow10[take];
    result += chunk;
    pos += take;
  }
  if (negative && !result.is_zero()) result.sign_ = -1;
  return result;
}

BigInt BigInt::pow2(unsigned e) {
  BigInt one(1);
  return one <<= e;
}

BigInt BigInt::pow(const BigInt& base, unsigned e) {
  BigInt result(1);
  BigInt acc = base;
  while (e != 0) {
    if (e & 1u) result *= acc;
    e >>= 1;
    if (e != 0) acc *= acc;
  }
  return result;
}

// ----------------------------------------------------------------- observers

std::size_t BigInt::bit_length() const noexcept {
  const std::size_t count = limb_count();
  if (count == 0) return 0;
  const Limb top = limb(count - 1);
  return (count - 1) * kLimbBits +
         (kLimbBits - static_cast<std::size_t>(std::countl_zero(top)));
}

bool BigInt::fits_int64() const noexcept {
  const std::size_t count = limb_count();
  if (count == 0) return true;
  if (count > 1) return false;
  const Limb mag = limb(0);
  if (mag < (Limb{1} << 63)) return true;
  // Exactly 2^63 of magnitude: only -2^63 fits.
  return sign_ < 0 && mag == (Limb{1} << 63);
}

std::int64_t BigInt::to_int64() const {
  CCMX_REQUIRE(fits_int64(), "BigInt does not fit in int64_t");
  const std::uint64_t mag = limb_count() == 0 ? 0 : limb(0);
  if (sign_ < 0) return static_cast<std::int64_t>(~mag + 1);
  return static_cast<std::int64_t>(mag);
}

double BigInt::to_double() const noexcept {
  double mag = 0.0;
  for (std::size_t i = limb_count(); i-- > 0;) {
    mag = mag * 18446744073709551616.0 + static_cast<double>(limb(i));
  }
  return sign_ < 0 ? -mag : mag;
}

std::string BigInt::to_string() const {
  if (sign_ == 0) return "0";
  constexpr Limb kChunk = 10000000000000000000ULL;  // 10^19
  std::string digits;
  if (!on_heap()) {
    u128 mag = small_mag();
    while (mag != 0) {
      digits.push_back(
          util::narrow_cast<char>('0' + static_cast<Limb>(mag % 10)));
      mag /= 10;
    }
  } else {
    // Repeated division by 10^19.
    std::vector<Limb> mag = heap_;
    while (!mag.empty()) {
      Limb rem = 0;
      for (std::size_t i = mag.size(); i-- > 0;) {
        const u128 cur = (static_cast<u128>(rem) << 64) | mag[i];
        mag[i] = static_cast<Limb>(cur / kChunk);
        rem = static_cast<Limb>(cur % kChunk);
      }
      trim_vec(mag);
      for (int d = 0; d < 19; ++d) {
        digits.push_back(util::narrow_cast<char>('0' + rem % 10));
        rem /= 10;
      }
    }
    while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  }
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.sign_ = -result.sign_;
  return result;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  if (result.sign_ < 0) result.sign_ = 1;
  return result;
}

// ------------------------------------------------------------ signed add/sub

void BigInt::add_signed(const Limb* rhs, std::size_t n, int rhs_sign) {
  if (rhs_sign == 0 || n == 0) return;
  if (sign_ == 0) {
    if (n <= kInlineLimbs) {
      set_u128((n > 1 ? (static_cast<u128>(rhs[1]) << 64) : u128{0}) | rhs[0],
               rhs_sign);
    } else {
      adopt(std::vector<Limb>(rhs, rhs + n), rhs_sign);
    }
    return;
  }
  if (!on_heap() && n <= kInlineLimbs) {
    note_small_op();
    const u128 am = small_mag();
    const u128 bm =
        (n > 1 ? (static_cast<u128>(rhs[1]) << 64) : u128{0}) | rhs[0];
    if (sign_ == rhs_sign) {
      const u128 sum = am + bm;
      if (sum >= am) {
        set_u128(sum, sign_);
      } else {
        adopt({lo64(sum), hi64(sum), 1}, sign_);  // 129-bit carry out
      }
    } else if (am == bm) {
      set_u128(0, 0);
    } else if (am > bm) {
      set_u128(am - bm, sign_);
    } else {
      set_u128(bm - am, rhs_sign);
    }
    return;
  }
  const Limb* lp = limb_data();
  const std::size_t ln = limb_count();
  if (sign_ == rhs_sign) {
    adopt(add_mag(lp, ln, rhs, n), sign_);
    return;
  }
  const int cmp = cmp_mag(lp, ln, rhs, n);
  if (cmp == 0) {
    set_u128(0, 0);
  } else if (cmp > 0) {
    adopt(sub_mag(lp, ln, rhs, n), sign_);
  } else {
    adopt(sub_mag(rhs, n, lp, ln), rhs_sign);
  }
}

void BigInt::add_word(std::uint64_t mag, int rhs_sign) {
  if (mag == 0 || rhs_sign == 0) return;
  if (sign_ == 0) {
    set_u128(mag, rhs_sign);
    return;
  }
  if (!on_heap()) {
    note_small_op();
    const u128 am = small_mag();
    if (sign_ == rhs_sign) {
      const u128 sum = am + mag;
      if (sum >= am) {
        set_u128(sum, sign_);
      } else {
        adopt({lo64(sum), hi64(sum), 1}, sign_);
      }
    } else if (am == mag) {
      set_u128(0, 0);
    } else if (am > mag) {
      set_u128(am - mag, sign_);
    } else {
      set_u128(static_cast<u128>(mag) - am, rhs_sign);
    }
    return;
  }
  // Heap: word-sized ripple, allocation-free (a >= 3-limb magnitude always
  // dominates a single word, so opposite signs can only subtract).
  if (sign_ == rhs_sign) {
    Limb carry = mag;
    for (std::size_t i = 0; carry != 0 && i < heap_.size(); ++i) {
      heap_[i] += carry;
      carry = static_cast<Limb>(heap_[i] < carry);
    }
    if (carry != 0) heap_.push_back(carry);
    return;
  }
  Limb borrow = mag;
  for (std::size_t i = 0; borrow != 0 && i < heap_.size(); ++i) {
    const Limb old = heap_[i];
    heap_[i] = old - borrow;
    borrow = static_cast<Limb>(old < borrow);
  }
  CCMX_ASSERT(borrow == 0);
  if (heap_.back() == 0) {
    std::vector<Limb> mag_vec = std::move(heap_);
    adopt(std::move(mag_vec), sign_);  // re-canonicalize (may demote)
  }
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  add_signed(rhs.limb_data(), rhs.limb_count(), rhs.sign_);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  if (&rhs == this) {
    set_u128(0, 0);
    return *this;
  }
  add_signed(rhs.limb_data(), rhs.limb_count(), -rhs.sign_);
  return *this;
}

BigInt& BigInt::operator+=(std::int64_t rhs) {
  add_word(mag_of_i64(rhs), rhs < 0 ? -1 : 1);
  return *this;
}

BigInt& BigInt::operator-=(std::int64_t rhs) {
  add_word(mag_of_i64(rhs), rhs < 0 ? 1 : -1);
  return *this;
}

// -------------------------------------------------------------- multiplying

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (sign_ == 0) return *this;
  if (rhs.sign_ == 0) {
    set_u128(0, 0);
    return *this;
  }
  if (!on_heap() && !rhs.on_heap()) {
    note_small_op();
    const std::size_t an = tag_;
    const std::size_t bn = rhs.tag_;
    if (an == 1 && bn == 1) {
      // Single-word product: always fits the inline form.
      set_u128(static_cast<u128>(small_[0]) * rhs.small_[0],
               sign_ * rhs.sign_);
      return *this;
    }
    // Fixed-size schoolbook over at most 2x2 limbs into a stack buffer.
    const std::array<Limb, kInlineLimbs> a = small_;
    const std::array<Limb, kInlineLimbs> b = rhs.small_;
    Limb r[2 * kInlineLimbs] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < an; ++i) {
      const u128 ai = a[i];
      Limb carry = 0;
      for (std::size_t j = 0; j < bn; ++j) {
        const u128 cur = static_cast<u128>(r[i + j]) + ai * b[j] + carry;
        r[i + j] = lo64(cur);
        carry = hi64(cur);
      }
      r[i + bn] = carry;
    }
    std::size_t rn = an + bn;
    while (rn > 0 && r[rn - 1] == 0) --rn;
    if (rn <= kInlineLimbs) {
      set_u128((static_cast<u128>(r[1]) << 64) | r[0], sign_ * rhs.sign_);
    } else {
      adopt(std::vector<Limb>(r, r + rn), sign_ * rhs.sign_);
    }
    return *this;
  }
  adopt(mul_mag(limb_data(), limb_count(), rhs.limb_data(), rhs.limb_count()),
        sign_ * rhs.sign_);
  return *this;
}

BigInt& BigInt::operator*=(std::int64_t rhs) {
  if (sign_ == 0) return *this;
  if (rhs == 0) {
    set_u128(0, 0);
    return *this;
  }
  const int result_sign = rhs < 0 ? -sign_ : sign_;
  const Limb wmag = mag_of_i64(rhs);
  if (!on_heap()) {
    note_small_op();
    const u128 p_lo = static_cast<u128>(small_[0]) * wmag;
    const u128 p_hi = static_cast<u128>(small_[1]) * wmag;
    const u128 mid = (p_lo >> 64) + p_hi;  // < 2^128: hi(p_lo) + p_hi maxes out
    if (hi64(mid) == 0) {
      set_u128((mid << 64) | lo64(p_lo), result_sign);
    } else {
      adopt({lo64(p_lo), lo64(mid), hi64(mid)}, result_sign);
    }
    return *this;
  }
  // Heap: in-place word multiply, one carry ripple over the vector.
  Limb carry = 0;
  for (Limb& l : heap_) {
    const u128 cur = static_cast<u128>(l) * wmag + carry;
    l = lo64(cur);
    carry = hi64(cur);
  }
  if (carry != 0) heap_.push_back(carry);
  sign_ = util::narrow_cast<std::int32_t>(result_sign);
  return *this;
}

BigInt& BigInt::add_mul(const BigInt& a, std::int64_t w) {
  if (a.sign_ == 0 || w == 0) return *this;
  const int psign = w < 0 ? -a.sign_ : a.sign_;
  const Limb wmag = mag_of_i64(w);
  const std::size_t an = a.limb_count();
  if (an == 1) {
    const u128 prod = static_cast<u128>(a.limb(0)) * wmag;
    const Limb span[2] = {lo64(prod), hi64(prod)};
    add_signed(span, span[1] != 0 ? 2 : 1, psign);
    return *this;
  }
  if (!a.on_heap()) {
    // Two-limb a: the three-limb product lives on the stack.
    const u128 p_lo = static_cast<u128>(a.small_[0]) * wmag;
    const u128 mid = (p_lo >> 64) + static_cast<u128>(a.small_[1]) * wmag;
    const Limb span[3] = {lo64(p_lo), lo64(mid), hi64(mid)};
    add_signed(span, span[2] != 0 ? 3 : 2, psign);
    return *this;
  }
  // Wide a: one scratch buffer for |a| * w, then a signed add.
  std::vector<Limb> prod(a.heap_.size() + 1, 0);
  Limb carry = 0;
  for (std::size_t i = 0; i < a.heap_.size(); ++i) {
    const u128 cur = static_cast<u128>(a.heap_[i]) * wmag + carry;
    prod[i] = lo64(cur);
    carry = hi64(cur);
  }
  prod[a.heap_.size()] = carry;
  trim_vec(prod);
  add_signed(prod.data(), prod.size(), psign);
  return *this;
}

// ----------------------------------------------------------------- division

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& a, const BigInt& b) {
  CCMX_REQUIRE(b.sign_ != 0, "division by zero");
  BigInt quot;
  BigInt rem;
  if (!a.on_heap() && !b.on_heap()) {
    note_small_op();
    const u128 am = a.small_mag();
    const u128 bm = b.small_mag();
    quot.set_u128(am / bm, a.sign_ * b.sign_);
    rem.set_u128(am % bm, a.sign_);
    return {std::move(quot), std::move(rem)};
  }
  std::vector<Limb> q;
  std::vector<Limb> r;
  divmod_mag(a.limb_data(), a.limb_count(), b.limb_data(), b.limb_count(), q,
             r);
  quot.adopt(std::move(q), a.sign_ * b.sign_);
  rem.adopt(std::move(r), a.sign_);
  return {std::move(quot), std::move(rem)};
}

BigInt BigInt::mod_floor(const BigInt& a, const BigInt& b) {
  BigInt r = divmod(a, b).second;
  if (r.sign_ < 0) r += b.abs();
  return r;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  return *this = divmod(*this, rhs).first;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  return *this = divmod(*this, rhs).second;
}

BigInt& BigInt::div_exact_word(std::int64_t w) {
  CCMX_REQUIRE(w != 0, "division by zero");
  if (sign_ == 0) return *this;
  const int result_sign = w < 0 ? -sign_ : sign_;
  const Limb wmag = mag_of_i64(w);
  if (!on_heap()) {
    note_small_op();
    const u128 am = small_mag();
    CCMX_REQUIRE(am % wmag == 0, "div_exact_word with a nonzero remainder");
    set_u128(am / wmag, result_sign);
    return *this;
  }
  Limb rem = 0;
  for (std::size_t i = heap_.size(); i-- > 0;) {
    const u128 cur = (static_cast<u128>(rem) << 64) | heap_[i];
    heap_[i] = static_cast<Limb>(cur / wmag);
    rem = static_cast<Limb>(cur % wmag);
  }
  CCMX_REQUIRE(rem == 0, "div_exact_word with a nonzero remainder");
  if (heap_.back() == 0) {
    std::vector<Limb> mag_vec = std::move(heap_);
    adopt(std::move(mag_vec), result_sign);  // trims; may demote to inline
  } else {
    sign_ = util::narrow_cast<std::int32_t>(result_sign);
  }
  return *this;
}

// ------------------------------------------------------------------- shifts

BigInt& BigInt::operator<<=(unsigned bits) {
  if (sign_ == 0 || bits == 0) return *this;
  if (!on_heap() && bit_length() + bits <= 2 * kLimbBits) {
    note_small_op();
    set_u128(small_mag() << bits, sign_);
    return *this;
  }
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  const Limb* p = limb_data();
  const std::size_t n = limb_count();
  std::vector<Limb> out(n + limb_shift + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? p[i] : (p[i] << bit_shift);
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= p[i] >> (kLimbBits - bit_shift);
    }
  }
  adopt(std::move(out), sign_);
  return *this;
}

BigInt& BigInt::operator>>=(unsigned bits) {
  if (sign_ == 0 || bits == 0) return *this;
  if (!on_heap()) {
    note_small_op();
    set_u128(bits >= 2 * kLimbBits ? u128{0} : small_mag() >> bits, sign_);
    return *this;
  }
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= heap_.size()) {
    set_u128(0, 0);
    return *this;
  }
  std::vector<Limb> out(heap_.begin() + static_cast<std::ptrdiff_t>(limb_shift),
                        heap_.end());
  if (bit_shift != 0) {
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      out[i] = (out[i] >> bit_shift) | (out[i + 1] << (kLimbBits - bit_shift));
    }
    out.back() >>= bit_shift;
  }
  adopt(std::move(out), sign_);
  return *this;
}

// ------------------------------------------------------- modular / gcd / div

std::uint64_t BigInt::mod_u64(std::uint64_t m) const {
  CCMX_REQUIRE(m > 0, "zero modulus");
  // Horner over limbs with 128-bit intermediates (acc < m <= 2^64 - 1, so
  // (acc << 64) | limb never overflows u128).
  u128 acc = 0;
  for (std::size_t i = limb_count(); i-- > 0;) {
    acc = ((acc << 64) | limb(i)) % m;
  }
  return static_cast<std::uint64_t>(acc);
}

std::uint64_t BigInt::mod_floor_u64(std::uint64_t m) const {
  CCMX_REQUIRE(m > 0, "zero modulus");
  const std::uint64_t r = mod_u64(m);
  return sign_ < 0 && r != 0 ? m - r : r;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.sign_ = a.limb_count() == 0 ? 0 : 1;
  b.sign_ = b.limb_count() == 0 ? 0 : 1;
  while (!b.is_zero()) {
    BigInt r = divmod(a, b).second;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigIntExtGcd BigInt::gcd_ext(const BigInt& a, const BigInt& b) {
  // Iterative extended Euclid on signed values.
  BigInt old_r = a, r = b;
  BigInt old_x(1), x(0);
  BigInt old_y(0), y(1);
  while (!r.is_zero()) {
    const auto [q, rem] = divmod(old_r, r);
    old_r = r;
    r = rem;
    BigInt next_x = old_x - q * x;
    old_x = x;
    x = std::move(next_x);
    BigInt next_y = old_y - q * y;
    old_y = y;
    y = std::move(next_y);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_x = -old_x;
    old_y = -old_y;
  }
  return BigIntExtGcd{std::move(old_r), std::move(old_x), std::move(old_y)};
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  CCMX_REQUIRE(m > BigInt(1), "mod_inverse needs modulus > 1");
  const BigIntExtGcd e = gcd_ext(a, m);
  CCMX_REQUIRE(e.g == BigInt(1), "mod_inverse of a non-unit");
  return mod_floor(e.x, m);
}

BigInt BigInt::divide_exact(const BigInt& rhs) const {
  auto [quot, rem] = divmod(*this, rhs);
  CCMX_REQUIRE(rem.is_zero(), "divide_exact with a nonzero remainder");
  return quot;
}

// ------------------------------------------------------- comparison / output

bool operator==(const BigInt& a, const BigInt& b) noexcept {
  if (a.sign_ != b.sign_) return false;
  const std::size_t n = a.limb_count();
  if (n != b.limb_count()) return false;
  const BigInt::Limb* ap = a.limb_data();
  const BigInt::Limb* bp = b.limb_data();
  for (std::size_t i = 0; i < n; ++i) {
    if (ap[i] != bp[i]) return false;
  }
  return true;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) noexcept {
  if (a.sign_ != b.sign_) return a.sign_ <=> b.sign_;
  const int mag = cmp_mag(a.limb_data(), a.limb_count(), b.limb_data(),
                          b.limb_count());
  const int signed_cmp = a.sign_ >= 0 ? mag : -mag;
  return signed_cmp <=> 0;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

std::size_t BigInt::hash() const noexcept {
  std::size_t h = sign_ >= 0 ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
  for (std::size_t i = 0, n = limb_count(); i < n; ++i) {
    h ^= limb(i) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void BigInt::append_key_bytes(std::string& out) const {
  // The magnitude is trimmed and the representation canonical, so (sign,
  // limb count, limb bytes) is a canonical key.  The count is part of the
  // key so concatenated keys stay prefix-free.
  const auto push_byte = [&out](std::uint64_t byte) {
    out.push_back(std::bit_cast<char>(static_cast<unsigned char>(byte)));
  };
  push_byte(static_cast<unsigned char>(sign_ + 1));
  const std::size_t count = limb_count();
  for (unsigned shift = 0; shift < 32; shift += 8) push_byte(count >> shift);
  for (std::size_t i = 0; i < count; ++i) {
    const Limb l = limb(i);
    for (unsigned shift = 0; shift < kLimbBits; shift += 8) {
      push_byte(l >> shift);
    }
  }
}

}  // namespace ccmx::num
