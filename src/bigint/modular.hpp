// Machine-word modular arithmetic and primality.
//
// The probabilistic protocols (Leighton-style fingerprinting, Freivalds
// verification, rank mod p) work over Z_p for a random prime p of
// Theta(max{log n, log k}) bits.  All moduli fit in 64 bits, so arithmetic
// uses unsigned __int128 intermediates; Miller-Rabin with the fixed base set
// below is deterministic for every modulus < 2^64.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/int128.hpp"
#include "util/rng.hpp"

namespace ccmx::num {

/// (a * b) mod m without overflow; m may be up to 2^64 - 1.
[[nodiscard]] inline std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                                          std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<ccmx::util::u128>(a) * b % m);
}

/// (base ^ exp) mod m.
[[nodiscard]] std::uint64_t powmod(std::uint64_t base, std::uint64_t exp,
                                   std::uint64_t m);

/// Modular inverse of a mod m for gcd(a, m) == 1; throws otherwise.
[[nodiscard]] std::uint64_t invmod(std::uint64_t a, std::uint64_t m);

/// Deterministic Miller-Rabin, valid for all n < 2^64.
[[nodiscard]] bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n <= 2^63 to avoid overflow in the scan).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n);

/// Uniform random prime with exactly `bits` bits (2 <= bits <= 62).
[[nodiscard]] std::uint64_t random_prime(unsigned bits,
                                         ccmx::util::Xoshiro256& rng);

/// All primes <= limit (simple sieve; limit <= 10^8 recommended).
[[nodiscard]] std::vector<std::uint64_t> primes_up_to(std::uint64_t limit);

/// Number of primes with exactly `bits` bits, counted exactly for
/// bits <= 20 (used by the fingerprint error analysis) — std::nullopt above.
[[nodiscard]] std::optional<std::uint64_t> count_primes_with_bits(
    unsigned bits);

}  // namespace ccmx::num
