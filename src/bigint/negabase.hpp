// Base-(-q) digit expansions with digits in {0, .., q-1}.
//
// The paper's hard-instance construction (Fig. 1/Fig. 3) relies on the
// vector u = [(-q)^{n-2}, .., (-q)^1, (-q)^0]^T: a row of free entries in
// {0, .., q-1} dotted with u is exactly a base-(-q) numeral.  Every integer
// has at most one expansion with a given digit budget, which is what makes
// the counting in Lemmas 3.4/3.5 exact.  This header provides conversion in
// both directions plus representability ranges.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bigint/bigint.hpp"

namespace ccmx::num {

/// Digits d_0..d_{len-1} (least significant first) with
/// value = sum d_i * (-q)^i and 0 <= d_i < q, or nullopt if `value` has no
/// expansion within `len` digits.  q >= 2.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> to_negabase(
    const BigInt& value, std::uint64_t q, std::size_t len);

/// Inverse of to_negabase: sum digits[i] * (-q)^i.
[[nodiscard]] BigInt from_negabase(const std::vector<std::uint32_t>& digits,
                                   std::uint64_t q);

/// The inclusive interval [lo, hi] of integers representable with `len`
/// base-(-q) digits in {0, .., q-1}.
struct NegabaseRange {
  BigInt lo;
  BigInt hi;
};
[[nodiscard]] NegabaseRange negabase_range(std::uint64_t q, std::size_t len);

}  // namespace ccmx::num
