// Reader and rollups for ccmx.profile/1 JSONL — the sampling CPU
// profiler's output (see obs/profiler.hpp for the writer).
//
// The stream is: one "meta" row carrying the schema id, sampling rate,
// and timer mechanism; interned "frame" rows (one per distinct program
// counter, symbolized offline); "sample" rows whose leaf-first "stack"
// arrays reference frames by id; and a closing "ledger" row whose
// conservation invariant — captured == written + dropped — proves no
// sample went missing unaccounted.
//
// Loading is tolerant, like load_timeseries: a torn final line (killed
// process) or foreign line is skipped and counted, and structural
// problems (unopenable file, wrong schema, missing ledger) land in
// `problems` instead of throwing — the analysis CLI renders partial
// data with a note rather than refusing.
//
// This header is NOT gated on CCMX_OBS_DISABLED: reading a profile that
// some other build wrote is pure file analysis and must work from an
// obs-off `ccmx_insight` too.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccmx::obs {

/// One interned program counter.  `symbolized` is true when dladdr
/// named the enclosing function; false frames carry module+offset (or a
/// bare hex address) in `sym` instead.
struct ProfileFrame {
  std::uint64_t id = 0;
  std::uint64_t pc = 0;
  std::string sym;
  std::string module;
  std::uint64_t off = 0;
  bool symbolized = false;
};

/// One captured stack: leaf-first frame ids, the obs span the sample
/// landed inside (0 when no span was open), and a now_us()-timeline
/// timestamp so samples merge with the span forest of the same run.
struct ProfileSample {
  std::uint32_t tid = 0;
  std::uint64_t span = 0;
  std::int64_t t_us = 0;
  std::vector<std::uint64_t> stack;
};

/// The closing conservation ledger.
struct ProfileLedger {
  std::uint64_t captured = 0;
  std::uint64_t written = 0;
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  std::uint64_t threads = 0;
};

struct ProfileData {
  std::string path;
  unsigned hz = 0;
  std::string mechanism;  ///< "timer_create" or "setitimer"
  std::int64_t start_us = 0;
  std::vector<ProfileFrame> frames;
  std::map<std::uint64_t, std::size_t> frame_index;  ///< id -> frames[]
  std::vector<ProfileSample> samples;
  bool has_ledger = false;
  ProfileLedger ledger;
  std::size_t skipped = 0;  ///< malformed / foreign lines
  std::vector<std::string> problems;

  [[nodiscard]] const ProfileFrame* frame(std::uint64_t id) const {
    const auto it = frame_index.find(id);
    return it == frame_index.end() ? nullptr : &frames[it->second];
  }
  /// The ledger's conservation invariant; vacuously false without one.
  [[nodiscard]] bool ledger_balances() const noexcept {
    return has_ledger && ledger.captured == ledger.written + ledger.dropped;
  }
};

/// Tolerant load (never throws for content reasons; see file comment).
[[nodiscard]] ProfileData load_profile(const std::string& path);

/// Per-function rollup: `self` counts samples whose leaf landed in the
/// function, `total` counts samples with the function anywhere on the
/// stack (each sample counted once per function, so recursion does not
/// inflate totals).  Sorted by self descending, then total.
struct ProfileHotspot {
  std::string sym;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};
[[nodiscard]] std::vector<ProfileHotspot> profile_hotspots(
    const ProfileData& data);

/// Collapsed (folded) stacks, root-first and ';'-joined — the classic
/// flamegraph.pl input format: "main;solve;BigInt::mul 42".
[[nodiscard]] std::map<std::string, std::uint64_t> collapsed_stacks(
    const ProfileData& data);

/// Fraction of samples attributable to at least one symbolized frame
/// (0.0 when there are no samples).
[[nodiscard]] double symbolized_sample_fraction(const ProfileData& data);

/// Sample counts keyed by span id (0 = outside any span), for merging
/// with the span forest of the same run's trace.
[[nodiscard]] std::map<std::uint64_t, std::uint64_t> samples_by_span(
    const ProfileData& data);

}  // namespace ccmx::obs
