// Minimal JSON support for the observability exporters.
//
// Two halves: a streaming Writer used to render RunReports and JSONL trace
// events (no intermediate DOM, deterministic field order), and a small
// recursive-descent parser used by tests and tools to schema-check what
// the writer produced.  Deliberately tiny: UTF-8 pass-through, doubles for
// all numbers, ordered object members.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ccmx::obs::json {

/// Escapes `raw` for inclusion inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string escape(std::string_view raw);

/// Streaming JSON writer.  Nesting is tracked so a malformed emission
/// sequence trips a contract failure instead of producing garbage.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(&os) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits an object key; must be inside an object, before its value.
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(double d);
  Writer& value(std::uint64_t u);
  Writer& value(std::int64_t i);
  Writer& value(int i) { return value(static_cast<std::int64_t>(i)); }
  Writer& value(bool b);
  Writer& null();

 private:
  void prefix();  // comma / nesting bookkeeping before any value
  std::ostream* os_;
  // One frame per open container: 'o'/'a', plus whether a value was
  // already emitted (for comma placement) and whether a key is pending.
  struct Frame {
    char kind;
    bool saw_value = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
};

/// Parsed JSON value (ordered object members, doubles for numbers).
struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

/// Parses a complete JSON document; throws util::contract_error on
/// malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

/// Serializes a parsed Value back to compact JSON (member order
/// preserved, numbers in %.17g so parse(render(parse(x))) is stable).
/// The inverse of parse() up to insignificant whitespace — used to embed
/// loaded documents into other artifacts (e.g. the HTML dashboard's data
/// island).
[[nodiscard]] std::string render(const Value& value);

}  // namespace ccmx::obs::json
