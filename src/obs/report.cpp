#include "obs/report.hpp"

#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "obs/obs.hpp"
#include "obs/schemas.hpp"
#include "util/require.hpp"

#ifndef CCMX_GIT_SHA
#define CCMX_GIT_SHA "unknown"
#endif
#ifndef CCMX_BUILD_TYPE
#define CCMX_BUILD_TYPE "unknown"
#endif

namespace ccmx::obs {

std::string build_git_sha() {
  if (const char* env = std::getenv("CCMX_GIT_SHA")) {
    if (env[0] != '\0') return env;
  }
  const char* baked = CCMX_GIT_SHA;
  return baked[0] == '\0' ? "unknown" : baked;
}

std::int64_t current_max_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB -> bytes
#endif
#else
  return 0;
#endif
}

RusageExtras current_rusage_extras() noexcept {
  RusageExtras extras;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return extras;
  extras.minor_faults = static_cast<std::int64_t>(usage.ru_minflt);
  extras.major_faults = static_cast<std::int64_t>(usage.ru_majflt);
  extras.voluntary_ctx_switches = static_cast<std::int64_t>(usage.ru_nvcsw);
  extras.involuntary_ctx_switches = static_cast<std::int64_t>(usage.ru_nivcsw);
#endif
  return extras;
}

namespace {

/// The shared hw sub-object shape: full numbers + derived rates when the
/// delta is live, an explicit {"available": false} otherwise so readers
/// can tell "degraded" from "zeros".
void write_hw_object(json::Writer& w, const HwCounters& hw,
                     bool with_reason) {
  w.begin_object();
  w.key("available").value(hw.available);
  if (hw.available) {
    w.key("instructions").value(hw.instructions);
    w.key("cycles").value(hw.cycles);
    w.key("ipc").value(hw.ipc());
    w.key("cache_references").value(hw.cache_references);
    w.key("cache_misses").value(hw.cache_misses);
    w.key("cache_miss_rate").value(hw.cache_miss_rate());
    w.key("branches").value(hw.branches);
    w.key("branch_misses").value(hw.branch_misses);
    w.key("task_clock_ns").value(hw.task_clock_ns);
  } else if (with_reason) {
    w.key("reason").value(hw_unavailable_reason());
  }
  w.end_object();
}

}  // namespace

std::string render_run_report(const RunReport& report) {
  // Settle the async trace pipeline first so the obs.trace.* counters
  // below agree with what actually reached the trace file.
  flush_trace_sink();
  const Snapshot snap = snapshot();
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value(kRunReportSchema);
  w.key("name").value(report.name);
  w.key("git_sha").value(build_git_sha());
  w.key("build_type").value(CCMX_BUILD_TYPE);
  w.key("unix_time").value(static_cast<std::int64_t>(std::time(nullptr)));
  // Same fallback rule as util::hardware_parallelism (not linked here to
  // keep ccmx_obs free of dependencies on the libraries it instruments).
  const unsigned hardware = std::thread::hardware_concurrency();
  w.key("hardware_parallelism")
      .value(static_cast<std::uint64_t>(hardware == 0 ? 1 : hardware));
  w.key("trace_enabled").value(enabled());
  // Honest-trace flag: true when events were dropped (backpressure under
  // CCMX_TRACE_POLICY=drop) or the trace file never opened, so readers
  // can tell a short trace from a truncated one.
  w.key("trace_truncated").value(trace_truncated());
  w.key("wall_seconds").value(report.wall_seconds);
  w.key("cpu_seconds").value(report.cpu_seconds);
  w.key("max_rss_bytes")
      .value(report.max_rss_bytes > 0 ? report.max_rss_bytes
                                      : current_max_rss_bytes());
  const RusageExtras extras = current_rusage_extras();
  w.key("minor_faults").value(extras.minor_faults);
  w.key("major_faults").value(extras.major_faults);
  w.key("voluntary_ctx_switches").value(extras.voluntary_ctx_switches);
  w.key("involuntary_ctx_switches").value(extras.involuntary_ctx_switches);
  // Same at-render-time capture rule as max_rss_bytes: a report that
  // never measured its own hw region gets the process totals.
  w.key("hw");
  write_hw_object(w, report.hw.available ? report.hw : hw_read(),
                  /*with_reason=*/true);
  w.key("argv").begin_array();
  for (const std::string& arg : report.argv) w.value(arg);
  w.end_array();
  w.key("attributes").begin_object();
  for (const auto& [key, value] : snap.attributes) w.key(key).value(value);
  w.end_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean());
    w.key("p50").value(h.p50);
    w.key("p90").value(h.p90);
    w.key("p99").value(h.p99);
    w.end_object();
  }
  w.end_object();
  w.key("benchmarks").begin_array();
  for (const BenchmarkRun& run : report.benchmarks) {
    w.begin_object();
    w.key("name").value(run.name);
    w.key("iterations").value(run.iterations);
    w.key("real_time").value(run.real_time);
    w.key("cpu_time").value(run.cpu_time);
    w.key("time_unit").value(run.time_unit);
    if (run.error) {
      w.key("error").value(true);
      w.key("error_message").value(run.error_message);
    }
    if (run.hw.available) {
      w.key("hw");
      write_hw_object(w, run.hw, /*with_reason=*/false);
      if (run.iterations > 0) {
        // The near-deterministic number the diff gate compares.
        w.key("insn_per_iteration")
            .value(static_cast<double>(run.hw.instructions) /
                   static_cast<double>(run.iterations));
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

std::string default_report_path(std::string_view name) {
  std::string dir = "bench/out";
  if (const char* env = std::getenv("CCMX_BENCH_OUT")) {
    if (env[0] != '\0') dir = env;
  }
  return dir + "/BENCH_" + std::string(name) + ".json";
}

std::string write_run_report(const RunReport& report, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  // Atomic publish: render into a sibling temp file (same filesystem, so
  // rename cannot cross a device boundary), then rename over the target.
  // A killed process leaves only a stray .tmp, never a truncated report.
#if defined(__unix__) || defined(__APPLE__)
  const std::string suffix = ".tmp." + std::to_string(::getpid());
#else
  const std::string suffix = ".tmp";
#endif
  const std::filesystem::path tmp(path + suffix);
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    CCMX_REQUIRE(out.is_open(),
                 "cannot open run report temp path: " + tmp.string());
    out << render_run_report(report);
    out.flush();
    CCMX_REQUIRE(out.good(), "short write on run report: " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, p, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    CCMX_REQUIRE(false, "cannot rename run report into place: " + path +
                            " (" + ec.message() + ')');
  }
  return path;
}

namespace {

void check_member(const json::Value& doc, std::string_view key,
                  json::Value::Kind kind, std::vector<std::string>& problems) {
  const json::Value* v = doc.find(key);
  if (v == nullptr) {
    problems.push_back("missing required member \"" + std::string(key) + '"');
    return;
  }
  if (v->kind != kind) {
    problems.push_back("member \"" + std::string(key) + "\" has wrong type");
  }
}

}  // namespace

std::vector<std::string> validate_run_report(const json::Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("document is not an object");
    return problems;
  }
  using Kind = json::Value::Kind;
  check_member(doc, "schema", Kind::kString, problems);
  if (const json::Value* schema = doc.find("schema");
      schema != nullptr && schema->is_string() &&
      schema->string != kRunReportSchema) {
    problems.push_back("unrecognized schema \"" + schema->string + '"');
  }
  check_member(doc, "name", Kind::kString, problems);
  if (const json::Value* name = doc.find("name");
      name != nullptr && name->is_string() && name->string.empty()) {
    problems.emplace_back("\"name\" must be non-empty");
  }
  check_member(doc, "git_sha", Kind::kString, problems);
  check_member(doc, "build_type", Kind::kString, problems);
  check_member(doc, "unix_time", Kind::kNumber, problems);
  check_member(doc, "hardware_parallelism", Kind::kNumber, problems);
  if (const json::Value* hw = doc.find("hardware_parallelism");
      hw != nullptr && hw->is_number() && hw->number < 1.0) {
    problems.emplace_back("\"hardware_parallelism\" must be >= 1");
  }
  check_member(doc, "trace_enabled", Kind::kBool, problems);
  check_member(doc, "wall_seconds", Kind::kNumber, problems);
  check_member(doc, "cpu_seconds", Kind::kNumber, problems);
  // Optional (reports written before the field existed stay valid), but
  // typed and non-negative when present.
  if (const json::Value* rss = doc.find("max_rss_bytes"); rss != nullptr) {
    if (!rss->is_number()) {
      problems.emplace_back("member \"max_rss_bytes\" has wrong type");
    } else if (rss->number < 0.0) {
      problems.emplace_back("\"max_rss_bytes\" must be >= 0");
    }
  }
  // Optional for the same reason: reports predating the async trace
  // pipeline carry no truncation flag.
  if (const json::Value* trunc = doc.find("trace_truncated");
      trunc != nullptr && !trunc->is_bool()) {
    problems.emplace_back("member \"trace_truncated\" has wrong type");
  }
  // Optional rusage extras (reports predating them stay valid); typed
  // and non-negative when present.
  for (const char* field : {"minor_faults", "major_faults",
                            "voluntary_ctx_switches",
                            "involuntary_ctx_switches"}) {
    if (const json::Value* v = doc.find(field); v != nullptr) {
      if (!v->is_number()) {
        problems.push_back("member \"" + std::string(field) +
                           "\" has wrong type");
      } else if (v->number < 0.0) {
        problems.push_back("\"" + std::string(field) + "\" must be >= 0");
      }
    }
  }
  // Optional hw block; when present it must carry a bool "available",
  // and an available block must carry the counter numbers.
  if (const json::Value* hw = doc.find("hw"); hw != nullptr) {
    if (!hw->is_object()) {
      problems.emplace_back("member \"hw\" has wrong type");
    } else {
      const json::Value* avail = hw->find("available");
      if (avail == nullptr || !avail->is_bool()) {
        problems.emplace_back("\"hw\" missing bool \"available\"");
      } else if (avail->boolean) {
        for (const char* field :
             {"instructions", "cycles", "ipc", "cache_references",
              "cache_misses", "cache_miss_rate", "branches", "branch_misses",
              "task_clock_ns"}) {
          const json::Value* f = hw->find(field);
          if (f == nullptr || !f->is_number()) {
            problems.push_back("\"hw\" missing numeric \"" +
                               std::string(field) + '"');
          }
        }
      }
    }
  }
  check_member(doc, "argv", Kind::kArray, problems);
  check_member(doc, "attributes", Kind::kObject, problems);
  if (const json::Value* attrs = doc.find("attributes");
      attrs != nullptr && attrs->is_object()) {
    for (const auto& [key, value] : attrs->object) {
      if (!value.is_string()) {
        problems.push_back("attribute \"" + key + "\" is not a string");
      }
    }
  }
  check_member(doc, "counters", Kind::kObject, problems);
  if (const json::Value* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [key, value] : counters->object) {
      if (!value.is_number()) {
        problems.push_back("counter \"" + key + "\" is not a number");
      }
    }
  }
  check_member(doc, "histograms", Kind::kObject, problems);
  if (const json::Value* hists = doc.find("histograms");
      hists != nullptr && hists->is_object()) {
    for (const auto& [key, value] : hists->object) {
      if (!value.is_object()) {
        problems.push_back("histogram \"" + key + "\" is not an object");
        continue;
      }
      for (const char* field :
           {"count", "min", "max", "mean", "p50", "p90", "p99"}) {
        const json::Value* f = value.find(field);
        if (f == nullptr || !f->is_number()) {
          problems.push_back("histogram \"" + key + "\" missing numeric \"" +
                             field + '"');
        }
      }
    }
  }
  check_member(doc, "benchmarks", Kind::kArray, problems);
  if (const json::Value* benches = doc.find("benchmarks");
      benches != nullptr && benches->is_array()) {
    for (std::size_t i = 0; i < benches->array.size(); ++i) {
      const json::Value& run = benches->array[i];
      const std::string where = "benchmarks[" + std::to_string(i) + ']';
      if (!run.is_object()) {
        problems.push_back(where + " is not an object");
        continue;
      }
      check_member(run, "name", Kind::kString, problems);
      check_member(run, "iterations", Kind::kNumber, problems);
      check_member(run, "real_time", Kind::kNumber, problems);
      check_member(run, "cpu_time", Kind::kNumber, problems);
      check_member(run, "time_unit", Kind::kString, problems);
      if (const json::Value* err = run.find("error"); err != nullptr) {
        if (!err->is_bool()) {
          problems.push_back(where + " member \"error\" has wrong type");
        } else if (err->boolean) {
          check_member(run, "error_message", Kind::kString, problems);
        }
      }
      // Optional per-row hw attribution (absent on degraded machines and
      // on reports predating the field).
      if (const json::Value* hw = run.find("hw"); hw != nullptr) {
        const json::Value* avail =
            hw->is_object() ? hw->find("available") : nullptr;
        if (avail == nullptr || !avail->is_bool()) {
          problems.push_back(where + " \"hw\" missing bool \"available\"");
        }
      }
    }
  }
  return problems;
}

}  // namespace ccmx::obs
