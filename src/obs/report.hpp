// Machine-readable run reports (schema "ccmx.run_report/1").
//
// A RunReport is the JSON summary every bench binary (and, via
// CCMX_REPORT, the CLI) writes at exit: identity (name, git SHA, build
// type, hardware parallelism), wall/CPU seconds, the google-benchmark
// timing rows, and whatever the obs registry accumulated (counters,
// histogram summaries, attributes).  Reports land in bench/out/
// (override with CCMX_BENCH_OUT) as BENCH_<name>.json and form the
// repo's perf trajectory; validate_run_report() is the schema check the
// tests and CI run against them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hwcounters.hpp"
#include "obs/json.hpp"

namespace ccmx::obs {

/// One google-benchmark timing row (times in the reported unit).  Rows
/// whose run errored are kept (name + error flag, zero timings) so a
/// benchmark that failed to run is visible in the report instead of
/// silently missing.
struct BenchmarkRun {
  std::string name;
  std::int64_t iterations = 0;
  double real_time = 0.0;
  double cpu_time = 0.0;
  std::string time_unit = "ns";
  bool error = false;
  std::string error_message;
  /// Hardware-counter delta attributed to this row's benchmark batch
  /// (warm-up/calibration iterations included — see bench_common.hpp).
  /// Rendered only when available.
  HwCounters hw;
};

/// Process-wide rusage deltas beyond max RSS — page faults diagnose
/// memory behaviour, context switches diagnose trace-sink `block` stalls.
struct RusageExtras {
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t voluntary_ctx_switches = 0;
  std::int64_t involuntary_ctx_switches = 0;
};

struct RunReport {
  std::string name;                 // e.g. "exact_cc" -> BENCH_exact_cc.json
  std::vector<std::string> argv;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Peak resident set size; <= 0 means "capture via getrusage at render
  /// time" (the report is written at process exit, so that is the peak).
  std::int64_t max_rss_bytes = 0;
  /// Process-total hardware counters; when not available at render time
  /// the renderer captures hw_read() itself (same rule as max_rss_bytes)
  /// and degrades to {"available": false, "reason": ...}.
  HwCounters hw;
  std::vector<BenchmarkRun> benchmarks;
};

/// Git SHA baked in at configure time (CCMX_GIT_SHA compile definition);
/// the CCMX_GIT_SHA environment variable overrides it, "unknown" otherwise.
[[nodiscard]] std::string build_git_sha();

/// Peak resident set size of this process in bytes (getrusage), 0 when
/// the platform cannot report it.
[[nodiscard]] std::int64_t current_max_rss_bytes() noexcept;

/// Fault and context-switch totals of this process (getrusage), zeros
/// when the platform cannot report them.
[[nodiscard]] RusageExtras current_rusage_extras() noexcept;

/// Renders the report plus the current obs snapshot as a JSON document.
[[nodiscard]] std::string render_run_report(const RunReport& report);

/// bench/out/BENCH_<name>.json, with the directory overridable via the
/// CCMX_BENCH_OUT environment variable.
[[nodiscard]] std::string default_report_path(std::string_view name);

/// Renders and writes the report, creating parent directories as needed.
/// The write is atomic: the JSON lands in a temp file in the target
/// directory first and is then renamed over `path`, so a killed process
/// or two racing bench binaries can never leave a truncated report that
/// later fails a strict parse.  Returns the path written.
std::string write_run_report(const RunReport& report, const std::string& path);

/// Schema check for a parsed report; returns human-readable problems
/// (empty means valid).
[[nodiscard]] std::vector<std::string> validate_run_report(
    const json::Value& doc);

}  // namespace ccmx::obs
