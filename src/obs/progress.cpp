#include "obs/progress.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/obs.hpp"

namespace ccmx::obs {

namespace {

bool progress_env_on() noexcept {
  const char* raw = std::getenv("CCMX_PROGRESS");
  if (raw == nullptr || raw[0] == '\0') return false;
  const std::string_view v(raw);
  return v != "0" && v != "false" && v != "off" && v != "no";
}

std::int64_t interval_from_env() noexcept {
  if (const char* raw = std::getenv("CCMX_PROGRESS_MS")) {
    const long ms = std::strtol(raw, nullptr, 10);
    if (ms > 0) return static_cast<std::int64_t>(ms) * 1000;
  }
  return 500000;  // 500 ms
}

/// "1.23e+07/s" style rate without iostream locale surprises.
void format_rate(char* buf, std::size_t len, double per_second) {
  if (per_second >= 1e6 || (per_second > 0 && per_second < 0.01)) {
    std::snprintf(buf, len, "%.2e/s", per_second);
  } else {
    std::snprintf(buf, len, "%.1f/s", per_second);
  }
}

}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total)
    : label_(std::move(label)), total_(total) {
  active_ = progress_env_on() || enabled();
  if (!active_) return;
  start_us_ = now_us();
  interval_us_ = interval_from_env();
  next_draw_us_.store(start_us_ + interval_us_, std::memory_order_relaxed);
}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::tick(std::uint64_t delta) noexcept {
  if (!active_) return;
  done_.fetch_add(delta, std::memory_order_relaxed);
  // Per-item ticks (delta == 1) consult the clock only every 1024 calls —
  // they can come from loops whose body is tens of nanoseconds.  Batched
  // ticks are already rate-limited by their chunking, so they always check
  // the clock (a few thousand chunk-sized calls must not starve redraws).
  if (delta == 1 &&
      (calls_.fetch_add(1, std::memory_order_relaxed) & 0x3FF) != 0) {
    return;
  }
  const std::int64_t now = now_us();
  std::int64_t next = next_draw_us_.load(std::memory_order_relaxed);
  if (now < next) return;
  // One thread wins the redraw; losers skip.
  if (next_draw_us_.compare_exchange_strong(next, now + interval_us_,
                                            std::memory_order_relaxed)) {
    draw(/*final_line=*/false);
  }
}

void ProgressMeter::finish() noexcept {
  if (!active_) return;
  if (finished_.exchange(true, std::memory_order_relaxed)) return;
  if (drew_.load(std::memory_order_relaxed)) draw(/*final_line=*/true);
}

void ProgressMeter::draw(bool final_line) noexcept {
  drew_.store(true, std::memory_order_relaxed);
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const double elapsed =
      static_cast<double>(now_us() - start_us_) * 1e-6;
  const double rate = elapsed > 0 ? static_cast<double>(done) / elapsed : 0.0;
  char rate_buf[32];
  format_rate(rate_buf, sizeof(rate_buf), rate);
  if (total_ > 0) {
    const double frac =
        static_cast<double>(done) / static_cast<double>(total_);
    char eta_buf[32];
    if (rate > 0 && done < total_) {
      std::snprintf(eta_buf, sizeof(eta_buf), "ETA %.0fs",
                    static_cast<double>(total_ - done) / rate);
    } else {
      std::snprintf(eta_buf, sizeof(eta_buf), "done");
    }
    std::fprintf(stderr, "\r[%s] %llu/%llu (%.1f%%) %s %s    ",
                 label_.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total_), frac * 100.0,
                 rate_buf, eta_buf);
  } else {
    std::fprintf(stderr, "\r[%s] %llu %s    ", label_.c_str(),
                 static_cast<unsigned long long>(done), rate_buf);
  }
  if (final_line) std::fputc('\n', stderr);
  std::fflush(stderr);
}

}  // namespace ccmx::obs
