// ccmx::obs — lightweight tracing, counters, and histograms.
//
// The paper's results are *counts* (bits per round, rectangle sizes,
// singular-matrix censuses), so the observability layer is count-first: a
// process-wide registry of named Counters (thread-local slots, folded when
// worker threads exit, so totals under util::parallel_for are exact),
// named Histograms (log2-bucketed, mutex-protected — recorded rarely), and
// RAII ScopedSpans that time a region and feed both the histogram registry
// and an optional JSONL event stream.
//
// Cost model: everything is gated on `enabled()` (one relaxed atomic
// load).  Tracing is OFF by default; set CCMX_TRACE=1 to enable counters
// and spans, CCMX_TRACE_FILE=<path> to also stream JSONL events.  Defining
// CCMX_OBS_DISABLED (CMake option CCMX_OBS=OFF) compiles the whole layer
// down to empty inline no-ops.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ccmx::obs {

/// Summary of one histogram: streaming moments plus quantiles estimated
/// from power-of-two buckets, linearly interpolated within the target
/// bucket (error bounded by the bucket width, not a factor of 2).
struct HistSummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// A quiescent-point view of the registry (counters folded across all
/// finished threads plus the live ones; call only when workers are joined).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistSummary>> histograms;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Backpressure policy of the trace sink, chosen when the sink opens
/// (CCMX_TRACE_POLICY or TraceSinkOptions::policy).
enum class TracePolicy : std::uint8_t {
  /// Emitters wait for ring space: lossless, but a hot path can stall
  /// behind a slow disk.  The default.
  kBlock,
  /// Overflowing events are discarded and counted in obs.trace.dropped
  /// (never silently): per-thread order is preserved, with gaps.
  kDrop,
  /// Legacy synchronous path — one mutex + write + flush per event.
  /// Kept as the ablation baseline for BENCH_obs; do not use in hot code.
  kSync,
};

/// Explicit sink configuration for open_trace_sink (CLIs and benches;
/// normal runs configure the sink through the environment instead).
struct TraceSinkOptions {
  std::string path;
  TracePolicy policy = TracePolicy::kBlock;
  /// Ring capacity in events; 0 picks the default (65536).
  std::size_t capacity = 0;
};

#ifndef CCMX_OBS_DISABLED

/// True when tracing is on (CCMX_TRACE=1 / CCMX_TRACE_FILE set, or an
/// explicit set_enabled(true)).  One relaxed atomic load.
[[nodiscard]] bool enabled() noexcept;

/// Runtime override of the environment default (used by tests and CLIs).
void set_enabled(bool on) noexcept;

/// Monotonic microseconds since the first obs call in this process.
[[nodiscard]] std::int64_t now_us() noexcept;

/// Named monotonic counter.  Construction interns the name (mutex);
/// add() touches only a thread-local slot, so it is safe and exact under
/// util::parallel_for — worker slots fold into the global registry when
/// the worker thread exits.
class Counter {
 public:
  explicit Counter(std::string_view name);

  void add(std::uint64_t delta = 1) const noexcept;

  /// Folded total.  Safe to call while workers are still adding (slots
  /// are relaxed atomics); the result is only exact at quiescent points.
  [[nodiscard]] std::uint64_t value() const;

 private:
  std::uint32_t id_;
};

/// Named histogram of doubles (durations, ratios, sizes).  record() takes
/// a mutex — meant for per-invocation rates, not per-element ones.
class Histogram {
 public:
  explicit Histogram(std::string_view name);

  void record(double value) const;

 private:
  std::uint32_t id_;
};

/// RAII timer: on destruction records wall seconds into histogram
/// "span.<name>" and, when the event sink is open, emits a JSONL event
/// {"ev":"span","id":...,"parent":...,"tid":...,"name":...,
///  "t_us":<start>,"dur_us":...[,"args":{...}]}.
///
/// Spans form a per-thread tree: every armed span gets a process-unique
/// id, its parent is the innermost armed span on the same thread (0 at
/// the root), and tid is a small sequential id assigned to each thread
/// on first use.  Events are emitted at scope *exit* (that is when the
/// duration is known), so children appear in the file before their
/// parents — "t_us" always records the construction time, and readers
/// must order by it, never by line number (see obs/trace_reader.hpp,
/// which rebuilds the tree from id/parent).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value to the span's JSONL event ("args" object).
  /// Dropped when the span is unarmed or no event sink is open; keys
  /// repeat in emission order (callers should not reuse them).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::uint64_t value);

  /// Process-unique span id (0 when tracing was disabled at construction).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Wall seconds since construction (0 when tracing was disabled then).
  [[nodiscard]] double seconds() const noexcept;

 private:
  std::string name_;
  std::string args_json_;  // pre-rendered `"k":v` pairs, comma-joined
  std::int64_t start_us_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  bool armed_ = false;
};

/// Sequential id of the calling thread (1-based, assigned on first use).
/// Stable for the thread's lifetime; spans stamp it into their events.
[[nodiscard]] std::uint32_t thread_id() noexcept;

/// Id of the innermost armed span on this thread, 0 outside any span.
/// Lets non-span events (channel sends) reference their enclosing span.
[[nodiscard]] std::uint64_t current_span_id() noexcept;

/// Free-form key/value attached to the run (seed, command, params).
/// Later writes overwrite earlier ones for the same key.
void set_attribute(std::string_view key, std::string_view value);

/// True when a JSONL event sink is open (CCMX_TRACE_FILE or an explicit
/// open_trace_sink).  Use to skip building event payloads that would be
/// dropped.  One relaxed atomic load after the first (lazy) probe.
[[nodiscard]] bool event_sink_open() noexcept;

/// Appends one pre-rendered JSON object as a line to the event sink
/// (no-op when the sink is closed).  `json_object` must not contain '\n'.
///
/// The write is asynchronous by default: events land in a per-thread
/// buffer, move in batches through a bounded MPSC ring, and a background
/// drainer thread writes them out.  Per-thread order is preserved; what
/// happens when the ring is full is the sink's TracePolicy.  Every call
/// that reaches an open sink counts obs.trace.emitted; every event the
/// sink could not write counts obs.trace.dropped.
void emit_event(std::string_view json_object);

/// Opens (or replaces, after draining) the trace sink.  Returns false —
/// and counts obs.trace.open_failed, reporting to stderr once — when the
/// file cannot be opened.  The environment path (CCMX_TRACE_FILE +
/// CCMX_TRACE_POLICY + CCMX_TRACE_BUFFER) goes through this too, lazily
/// on the first emit.
bool open_trace_sink(const TraceSinkOptions& options);

/// Publishes this thread's buffered events and blocks until the drainer
/// has written and flushed everything buffered so far (all threads'
/// swept buffers included).  No-op without a sink.  Call before reading
/// a trace file back in the writing process.
void flush_trace_sink();

/// Drains, flushes, and closes the sink; emit_event becomes a no-op
/// until a sink is opened again.  Safe to call with no sink open.
void close_trace_sink();

/// True when trace output is known incomplete: some events were dropped
/// (obs.trace.dropped > 0) or the trace file failed to open
/// (obs.trace.open_failed > 0).  Stamped into the run report so readers
/// can tell a short trace from a truncated one.
[[nodiscard]] bool trace_truncated();

/// Folds the calling thread's counter slots into the global registry now
/// (normally automatic at thread exit) and publishes its buffered trace
/// events to the sink's ring (without waiting for the write).
void flush_thread();

/// Folded view of every counter/histogram/attribute registered so far.
[[nodiscard]] Snapshot snapshot();

/// Zeroes all counter/histogram/attribute *values* (names stay interned)
/// so tests can isolate their deltas.
void reset_values();

#else  // CCMX_OBS_DISABLED: the whole layer is inline no-ops.

[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
[[nodiscard]] inline std::int64_t now_us() noexcept { return 0; }

class Counter {
 public:
  explicit Counter(std::string_view) {}
  void add(std::uint64_t = 1) const noexcept {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
};

class Histogram {
 public:
  explicit Histogram(std::string_view) {}
  void record(double) const {}
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void arg(std::string_view, std::string_view) {}
  void arg(std::string_view, std::uint64_t) {}
  [[nodiscard]] std::uint64_t id() const noexcept { return 0; }
  [[nodiscard]] double seconds() const noexcept { return 0.0; }
};

[[nodiscard]] inline std::uint32_t thread_id() noexcept { return 0; }
[[nodiscard]] inline std::uint64_t current_span_id() noexcept { return 0; }

inline void set_attribute(std::string_view, std::string_view) {}
[[nodiscard]] inline bool event_sink_open() noexcept { return false; }
inline void emit_event(std::string_view) {}
inline bool open_trace_sink(const TraceSinkOptions&) { return false; }
inline void flush_trace_sink() {}
inline void close_trace_sink() {}
[[nodiscard]] inline bool trace_truncated() { return false; }
inline void flush_thread() {}
[[nodiscard]] inline Snapshot snapshot() { return {}; }
inline void reset_values() {}

#endif  // CCMX_OBS_DISABLED

}  // namespace ccmx::obs
