#include "obs/profiler.hpp"

#ifndef CCMX_OBS_DISABLED

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/schemas.hpp"
#include "util/narrow.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/syscall.h>
#include <ucontext.h>
#endif
#if defined(__GNUG__)
#include <cxxabi.h>
#endif

// The sigevent member selecting SIGEV_THREAD_ID's target is still spelled
// through the union on older glibc headers.
#if defined(__linux__) && defined(SIGEV_THREAD_ID) && \
    !defined(sigev_notify_thread_id)
#define sigev_notify_thread_id _sigev_un._tid
#endif

// The SIGPROF handler and its helpers must not allocate, lock, or touch
// stdio; functions marked with the attribute below also opt out of
// sanitizer instrumentation, because the frame-pointer walk reads raw
// stack words that ASan/TSan did not see written through instrumented
// code (the reads are bounds-checked against the thread's stack segment,
// so they cannot fault).
#if defined(__clang__)
#define CCMX_PROF_SIGNAL_FN \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#elif defined(__GNUC__)
#define CCMX_PROF_SIGNAL_FN \
  __attribute__((no_sanitize_address)) __attribute__((no_sanitize_undefined))
#else
#define CCMX_PROF_SIGNAL_FN
#endif

namespace ccmx::obs {

namespace {

#if defined(__unix__) || defined(__APPLE__)

constexpr std::uint32_t kMaxFrames = 48;
constexpr std::uint32_t kMinRing = 8;
constexpr std::uint32_t kMaxRing = 1u << 20;

/// One captured sample: the leaf-first program-counter stack, the obs
/// span enclosing the interrupted code, and a timestamp on the now_us()
/// timeline so samples merge with the span forest.
struct ProfSample {
  std::int64_t t_us = 0;
  std::uint64_t span = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uintptr_t pcs[kMaxFrames] = {};
};

/// Per-thread profiling state.  The ring is single-producer (the SIGPROF
/// handler, which always runs on the owning thread) / single-consumer
/// (the drainer): the handler is the only writer of `head`, the drainer
/// the only writer of `tail`, both monotonic.  The ring storage is
/// allocated in normal context (arm_thread_locked) before `armed` is
/// released, so the handler never allocates.
struct ThreadState {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> captured{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<bool> armed{false};
  std::vector<ProfSample> ring;
  std::uint32_t capacity = 0;

  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  std::uint32_t obs_tid = 0;
  pid_t kernel_tid = 0;
  clockid_t cpu_clock{};
  bool have_cpu_clock = false;
#if defined(__linux__) && defined(SIGEV_THREAD_ID)
  timer_t timer{};
  bool timer_created = false;
#endif
  std::atomic<bool> alive{true};
};

/// Set while the profiler is between a successful start() and the
/// matching stop(); the handler gate.  File-scope so the handler does
/// not have to reach through the (lazily constructed) engine singleton.
std::atomic<bool> g_active{false};

/// now_us()-timeline origin pair: the handler derives timestamps from a
/// raw clock_gettime(CLOCK_MONOTONIC) (async-signal-safe) and these
/// offsets, recorded at start().
std::atomic<std::int64_t> g_origin_mono_ns{0};
std::atomic<std::int64_t> g_origin_obs_us{0};

/// The main executable's text range, snapshotted at start() for the
/// handler's stack-scan fallback (zero when unknown; scan disabled).
std::atomic<std::uintptr_t> g_text_lo{0};
std::atomic<std::uintptr_t> g_text_hi{0};

/// The handler finds its thread's state through this; registration sets
/// it, the thread-exit guard clears it *before* deleting the timer so a
/// straggler signal sees null and returns.
thread_local ThreadState* t_state = nullptr;

// ------------------------------------------------- signal-context code

// ccmx-lint: signal-context
CCMX_PROF_SIGNAL_FN void capture_interrupted(void* uctx, std::uintptr_t* pc,
                                             std::uintptr_t* fp,
                                             std::uintptr_t* sp) {
  *pc = 0;
  *fp = 0;
  *sp = 0;
#if defined(__linux__) && defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
  *pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  *fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  *sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__linux__) && defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
  *pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  *fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  *sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uctx;
  *pc = reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  *fp = reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  *sp = *fp;
#endif
}

// Frame-pointer chain walk.  Each frame record is {caller's fp, return
// address}; every dereference is bounds-checked against the owning
// thread's stack segment and required to move strictly upward, so a
// clobbered or absent frame pointer terminates the walk instead of
// faulting.
// ccmx-lint: signal-context
CCMX_PROF_SIGNAL_FN std::uint32_t walk_frames(std::uintptr_t pc,
                                              std::uintptr_t fp,
                                              std::uintptr_t lo,
                                              std::uintptr_t hi,
                                              std::uintptr_t* pcs,
                                              std::uint32_t max_frames) {
  std::uint32_t depth = 0;
  if (pc != 0 && depth < max_frames) pcs[depth++] = pc;
  std::uintptr_t frame = fp;
  while (depth < max_frames) {
    if (frame < lo || frame + 2 * sizeof(std::uintptr_t) > hi) break;
    if ((frame & (sizeof(std::uintptr_t) - 1)) != 0) break;
    const std::uintptr_t* record =
        reinterpret_cast<const std::uintptr_t*>(frame);
    const std::uintptr_t next = record[0];
    const std::uintptr_t ret = record[1];
    if (ret < 4096) break;
    pcs[depth++] = ret;
    if (next <= frame) break;
    frame = next;
  }
  return depth;
}

// Fallback when the frame-pointer chain dies at the leaf — typically a
// sample landing inside libc, which is built without frame pointers, so
// RBP holds arbitrary callee-saved data.  Scan the stack upward from the
// interrupted SP and keep every word that points into the main
// executable's text segment: return addresses into our own code sit on
// the stack even when the chain through the foreign frame is broken.
// Heuristic by nature (a stale return address from a dead frame can slip
// in), so it only runs when the precise walk produced nothing, and both
// the word budget and the collected depth are capped.
// ccmx-lint: signal-context
CCMX_PROF_SIGNAL_FN std::uint32_t scan_stack(std::uintptr_t sp,
                                             std::uintptr_t hi,
                                             std::uintptr_t* pcs,
                                             std::uint32_t depth,
                                             std::uint32_t max_frames) {
  const std::uintptr_t text_lo = g_text_lo.load(std::memory_order_relaxed);
  const std::uintptr_t text_hi = g_text_hi.load(std::memory_order_relaxed);
  if (text_lo == 0 || text_hi <= text_lo) return depth;
  constexpr std::uint32_t kMaxScanWords = 512;
  std::uintptr_t word_addr = sp & ~(sizeof(std::uintptr_t) - 1);
  for (std::uint32_t scanned = 0;
       scanned < kMaxScanWords && depth < max_frames &&
       word_addr + sizeof(std::uintptr_t) <= hi;
       ++scanned, word_addr += sizeof(std::uintptr_t)) {
    const std::uintptr_t word =
        *reinterpret_cast<const std::uintptr_t*>(word_addr);
    if (word >= text_lo && word < text_hi) pcs[depth++] = word;
  }
  return depth;
}

// ccmx-lint: signal-context
CCMX_PROF_SIGNAL_FN void sigprof_handler(int /*signo*/, siginfo_t* /*info*/,
                                         void* uctx) {
  ThreadState* st = t_state;
  if (st == nullptr) return;
  if (!g_active.load(std::memory_order_acquire)) return;
  if (!st->armed.load(std::memory_order_acquire)) return;
  const int saved_errno = errno;
  st->captured.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t head = st->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = st->tail.load(std::memory_order_acquire);
  if (head - tail >= st->capacity) {
    st->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  ProfSample& s = st->ring[head % st->capacity];
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
  std::uintptr_t sp = 0;
  capture_interrupted(uctx, &pc, &fp, &sp);
  s.depth = walk_frames(pc, fp, st->stack_lo, st->stack_hi, s.pcs, kMaxFrames);
  if (s.depth <= 1 && sp >= st->stack_lo && sp < st->stack_hi) {
    // Leaf-only stack: the chain broke inside a foreign (no-FP) module.
    constexpr std::uint32_t kMaxScanFrames = 16;
    s.depth = scan_stack(sp, st->stack_hi, s.pcs, s.depth, kMaxScanFrames);
  }
  if (s.depth == kMaxFrames) {
    st->truncated.fetch_add(1, std::memory_order_relaxed);
  }
  s.span = current_span_id();
  s.tid = st->obs_tid;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::int64_t mono_ns =
      static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  s.t_us = g_origin_obs_us.load(std::memory_order_relaxed) +
           (mono_ns - g_origin_mono_ns.load(std::memory_order_relaxed)) / 1000;
  st->head.store(head + 1, std::memory_order_release);
  errno = saved_errno;
}

// ---------------------------------------------- normal-context plumbing

/// One executable mapping from the /proc/self/maps snapshot taken at
/// start(): the symbolizer's fallback when dladdr knows nothing about a
/// program counter (static binaries without an exported symbol nearby).
struct MapsEntry {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  std::string path;
};

/// A symbolized (or not) frame, interned per distinct program counter;
/// sample rows reference frames by id to keep the JSONL compact.
struct FrameRec {
  std::uint64_t id = 0;
  bool symbolized = false;
};

struct Engine {
  /// Control mutex: serializes start/stop and guards reason + final
  /// ledger.  Never held while joining the drainer together with
  /// data_mu (lock order: mu -> data_mu).
  std::mutex mu;
  bool running = false;
  std::string reason = "profiler never started";
  ProfilerOptions opts;
  bool thread_timers = false;
  bool sa_installed = false;
  struct sigaction old_sa {};
  bool itimer_armed = false;
  ProfilerLedger final_ledger;

  /// Data mutex: guards everything the drainer sweeps — the thread
  /// registry, the output stream, the frame intern table, and the
  /// written/truncated tallies.
  std::mutex data_mu;
  std::vector<std::shared_ptr<ThreadState>> threads;
  std::ofstream out;
  std::map<std::uintptr_t, FrameRec> frames;
  std::uint64_t next_frame_id = 1;
  std::uint64_t written = 0;
  std::uint64_t armed_threads = 0;
  std::vector<MapsEntry> maps;

  std::condition_variable_any cv;
  std::jthread drainer;
};

/// Deliberately immortal (never destroyed): pool workers run their
/// thread-exit guards while static destructors may already be tearing
/// the process down, and the guard must always find a live registry —
/// same reason the trace sink is swept, not owned, by its threads.
Engine& engine() {
  static Engine* e = new Engine;
  return *e;
}

pid_t current_kernel_tid() noexcept {
#if defined(__linux__)
  return static_cast<pid_t>(::syscall(SYS_gettid));
#else
  return ::getpid();
#endif
}

void thread_stack_bounds(std::uintptr_t* lo, std::uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
#if defined(__linux__)
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      *lo = reinterpret_cast<std::uintptr_t>(addr);
      *hi = *lo + size;
    }
    pthread_attr_destroy(&attr);
  }
#endif
  if (*lo == 0) {
    // Fallback bounds: a window around the current stack pointer.  Wide
    // enough for real frames, narrow enough that a garbage frame pointer
    // still terminates the walk.
    const std::uintptr_t here =
        reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
    *lo = here > (1u << 20) ? here - (1u << 20) : 0;
    *hi = here + (1u << 20);
  }
}

/// Frame-pointer self-check: three noinline frames walked from the leaf
/// must surface at least the two callers.  Optimized builds without
/// -fno-omit-frame-pointer fail here, which start() reports as a
/// degradation reason instead of emitting unattributable garbage.
__attribute__((noinline)) std::uint32_t fp_check_leaf() {
  std::uintptr_t pcs[8] = {};
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  thread_stack_bounds(&lo, &hi);
  const std::uintptr_t fp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  const std::uintptr_t pc =
      reinterpret_cast<std::uintptr_t>(__builtin_return_address(0));
  return walk_frames(pc, fp, lo, hi, pcs, 8);
}

__attribute__((noinline)) std::uint32_t fp_check_mid() {
  // The += keeps the call from being tail-called away.
  std::uint32_t depth = fp_check_leaf();
  depth += 0;
  return depth;
}

bool frame_pointers_usable() { return fp_check_mid() >= 2; }

void snapshot_maps(std::vector<MapsEntry>& maps) {
  maps.clear();
#if defined(__linux__)
  std::ifstream in("/proc/self/maps");
  std::string line;
  while (std::getline(in, line)) {
    // 55e0..-55e1.. r-xp offset dev inode      /path/to/module
    std::istringstream row(line);
    std::string range;
    std::string perms;
    row >> range >> perms;
    if (perms.size() < 3 || perms[2] != 'x') continue;
    const std::size_t dash = range.find('-');
    if (dash == std::string::npos) continue;
    MapsEntry entry;
    entry.lo = std::strtoull(range.substr(0, dash).c_str(), nullptr, 16);
    entry.hi = std::strtoull(range.substr(dash + 1).c_str(), nullptr, 16);
    std::string rest;
    std::getline(row, rest);
    const std::size_t slash = rest.rfind(' ');
    if (slash != std::string::npos) entry.path = rest.substr(slash + 1);
    maps.push_back(std::move(entry));
  }
#endif
}

/// Publishes the main executable's text range for the handler's
/// stack-scan fallback: the union of executable mappings whose path is
/// the /proc/self/exe target.  Zeroed when the platform can't tell.
void publish_main_text_range(const std::vector<MapsEntry>& maps) {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
#if defined(__linux__)
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (len > 0) {
    exe[len] = '\0';
    for (const MapsEntry& entry : maps) {
      if (entry.path != exe) continue;
      if (lo == 0 || entry.lo < lo) lo = entry.lo;
      if (entry.hi > hi) hi = entry.hi;
    }
  }
#else
  (void)maps;
#endif
  g_text_lo.store(lo, std::memory_order_relaxed);
  g_text_hi.store(hi, std::memory_order_relaxed);
}

std::string basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return std::string(slash == std::string_view::npos
                         ? path
                         : path.substr(slash + 1));
}

std::string demangle(const char* name) {
#if defined(__GNUG__)
  int status = 0;
  char* out = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && out != nullptr) {
    std::string result(out);
    std::free(out);
    return result;
  }
  std::free(out);
#endif
  return std::string(name);
}

/// Symbolizes one program counter (normal context only): dladdr against
/// the dynamic symbol table first — the build links with
/// -Wl,--export-dynamic so the repo's own functions resolve — then the
/// maps snapshot for a module+offset, then a bare hex address.
void describe_pc(Engine& eng, std::uintptr_t pc, std::string* sym,
                 std::string* module, std::uint64_t* offset,
                 bool* symbolized) {
  *symbolized = false;
  *offset = 0;
  Dl_info info{};
  // The *call* return addresses in pcs[1..] point one byte past the call
  // instruction; resolving pc-1 attributes them to the calling line's
  // function, not a possibly-adjacent next symbol.  pcs[0] is the
  // interrupted instruction itself and is resolved exactly, but being
  // off by one byte cannot change its enclosing symbol.
  const std::uintptr_t probe = pc > 0 ? pc - 1 : pc;
  if (dladdr(reinterpret_cast<void*>(probe), &info) != 0) {
    if (info.dli_sname != nullptr) {
      *sym = demangle(info.dli_sname);
      *offset = pc - reinterpret_cast<std::uintptr_t>(info.dli_saddr);
      *symbolized = true;
    }
    if (info.dli_fname != nullptr) *module = basename_of(info.dli_fname);
  }
  if (!*symbolized) {
    for (const MapsEntry& entry : eng.maps) {
      if (pc < entry.lo || pc >= entry.hi) continue;
      if (module->empty()) {
        *module = entry.path.empty() ? "anon" : basename_of(entry.path);
      }
      *offset = pc - entry.lo;
      break;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(pc));
    *sym = module->empty() ? std::string(buf)
                           : *module + "+" + std::string(buf);
  }
}

/// Interns a pc, writing its "frame" row on first sight.  data_mu held.
std::uint64_t intern_frame(Engine& eng, std::uintptr_t pc) {
  const auto it = eng.frames.find(pc);
  if (it != eng.frames.end()) return it->second.id;
  FrameRec rec;
  rec.id = eng.next_frame_id++;
  std::string sym;
  std::string module;
  std::uint64_t offset = 0;
  describe_pc(eng, pc, &sym, &module, &offset, &rec.symbolized);
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("ev").value("frame");
  w.key("id").value(rec.id);
  w.key("pc").value(std::uint64_t{pc});
  w.key("sym").value(sym);
  w.key("module").value(module);
  w.key("off").value(offset);
  w.key("symbolized").value(rec.symbolized);
  w.end_object();
  eng.out << os.str() << '\n';
  eng.frames.emplace(pc, rec);
  return rec.id;
}

/// Drains every ring into the file.  data_mu held by the caller.
void sweep_locked(Engine& eng) {
  for (const std::shared_ptr<ThreadState>& st : eng.threads) {
    const std::uint64_t head = st->head.load(std::memory_order_acquire);
    std::uint64_t tail = st->tail.load(std::memory_order_relaxed);
    while (tail < head) {
      const ProfSample& s = st->ring[tail % st->capacity];
      std::ostringstream os;
      json::Writer w(os);
      w.begin_object();
      w.key("ev").value("sample");
      w.key("tid").value(std::uint64_t{s.tid});
      w.key("span").value(s.span);
      w.key("t_us").value(s.t_us);
      w.key("stack").begin_array();
      for (std::uint32_t f = 0; f < s.depth; ++f) {
        w.value(intern_frame(eng, s.pcs[f]));
      }
      w.end_array();
      w.end_object();
      eng.out << os.str() << '\n';
      ++eng.written;
      ++tail;
      st->tail.store(tail, std::memory_order_release);
    }
  }
  eng.out.flush();
}

/// Sums the per-thread atomics into a ledger.  data_mu held.
ProfilerLedger ledger_locked(Engine& eng) {
  ProfilerLedger ledger;
  for (const std::shared_ptr<ThreadState>& st : eng.threads) {
    ledger.captured += st->captured.load(std::memory_order_relaxed);
    ledger.dropped += st->dropped.load(std::memory_order_relaxed);
    ledger.truncated += st->truncated.load(std::memory_order_relaxed);
  }
  ledger.threads = eng.armed_threads;
  ledger.written = eng.written;
  ledger.thread_timers = eng.thread_timers;
  return ledger;
}

/// Allocates the ring and (in per-thread-timer mode) arms the thread's
/// CPU-time timer.  data_mu held; normal context.
void arm_thread_locked(Engine& eng, ThreadState& st) {
  if (st.armed.load(std::memory_order_relaxed)) return;
  if (!st.alive.load(std::memory_order_relaxed)) return;
  st.capacity = std::clamp(eng.opts.ring_capacity, kMinRing, kMaxRing);
  st.ring.assign(st.capacity, ProfSample{});
  st.head.store(0, std::memory_order_relaxed);
  st.tail.store(0, std::memory_order_relaxed);
  st.captured.store(0, std::memory_order_relaxed);
  st.dropped.store(0, std::memory_order_relaxed);
  st.truncated.store(0, std::memory_order_relaxed);
  st.armed.store(true, std::memory_order_release);
  ++eng.armed_threads;
#if defined(__linux__) && defined(SIGEV_THREAD_ID)
  if (eng.thread_timers && !st.timer_created && st.have_cpu_clock) {
    struct sigevent sev {};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = st.kernel_tid;
    if (timer_create(st.cpu_clock, &sev, &st.timer) == 0) {
      st.timer_created = true;
      const long long period_ns = 1000000000LL / eng.opts.hz;
      struct itimerspec its {};
      its.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000LL);
      its.it_interval.tv_nsec = static_cast<long>(period_ns % 1000000000LL);
      its.it_value = its.it_interval;
      if (timer_settime(st.timer, 0, &its, nullptr) != 0) {
        timer_delete(st.timer);
        st.timer_created = false;
      }
    }
    if (!st.timer_created) {
      std::fprintf(stderr,
                   "ccmx: profiler could not arm a CPU-time timer for "
                   "tid %d: %s (thread will not be sampled)\n",
                   util::narrow_cast<int>(st.kernel_tid),
                   std::strerror(errno));
    }
  }
#endif
}

/// Deletes the thread's timer if it owns one.  data_mu held.
void disarm_thread_locked(ThreadState& st) {
#if defined(__linux__) && defined(SIGEV_THREAD_ID)
  if (st.timer_created) {
    timer_delete(st.timer);
    st.timer_created = false;
  }
#endif
  st.armed.store(false, std::memory_order_release);
}

/// Clears the calling thread's registration at thread exit: the TLS
/// pointer goes null first so a signal already in flight sees nothing,
/// then the timer is deleted and the state marked dead (its undrained
/// samples survive in the registry until the next sweep).
struct ThreadGuard {
  ~ThreadGuard() {
    ThreadState* st = t_state;
    if (st == nullptr) return;
    t_state = nullptr;
    Engine& eng = engine();
    const std::scoped_lock lock(eng.data_mu);
    disarm_thread_locked(*st);
    st->alive.store(false, std::memory_order_release);
  }
};

void drainer_main(std::stop_token stop) {
  Engine& eng = engine();
  std::mutex wait_mu;
  const auto interval = std::chrono::milliseconds(
      std::clamp<std::int64_t>(eng.opts.drain_interval_ms, 1, 10000));
  while (!stop.stop_requested()) {
    {
      std::unique_lock lock(wait_mu);
      eng.cv.wait_for(lock, stop, interval,
                      [&] { return stop.stop_requested(); });
    }
    if (stop.stop_requested()) break;
    const std::scoped_lock lock(eng.data_mu);
    sweep_locked(eng);
  }
}

unsigned env_hz(unsigned fallback) {
  const char* raw = std::getenv("CCMX_PROF_HZ");
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || parsed == 0 || parsed > 10000) {
    std::fprintf(stderr,
                 "ccmx: ignoring CCMX_PROF_HZ=%s (want an integer in "
                 "[1, 10000]); using %u\n",
                 raw, fallback);
    return fallback;
  }
  return util::narrow_cast<unsigned>(parsed);
}

#endif  // __unix__ || __APPLE__

}  // namespace

#if defined(__unix__) || defined(__APPLE__)

void profiler_register_thread() {
  if (t_state != nullptr) return;
  auto st = std::make_shared<ThreadState>();
  st->kernel_tid = current_kernel_tid();
  st->obs_tid = thread_id();
  st->have_cpu_clock =
      pthread_getcpuclockid(pthread_self(), &st->cpu_clock) == 0;
  thread_stack_bounds(&st->stack_lo, &st->stack_hi);
  // Touch the span-id mirror so its TLS slot exists before any signal
  // can read it on this thread.
  (void)current_span_id();
  Engine& eng = engine();
  {
    const std::scoped_lock lock(eng.data_mu);
    eng.threads.push_back(st);
    t_state = st.get();
    if (g_active.load(std::memory_order_relaxed)) {
      arm_thread_locked(eng, *st);
    }
  }
  thread_local ThreadGuard guard;
  (void)guard;
}

bool profiler_start(const ProfilerOptions& options) {
  Engine& eng = engine();
  const std::scoped_lock control(eng.mu);
  const auto refuse = [&](std::string why) {
    eng.reason = std::move(why);
    std::fprintf(stderr, "ccmx: profiler unavailable: %s\n",
                 eng.reason.c_str());
    return false;
  };
  if (eng.running) return refuse("profiler already running");
  if (options.path.empty()) return refuse("no output path configured");
  if (!frame_pointers_usable()) {
    return refuse(
        "frame-pointer walk found no caller frames (build with "
        "CCMX_FRAME_POINTERS=ON, the default)");
  }

  // Claim SIGPROF, refusing to displace a foreign handler.
  struct sigaction current {};
  if (sigaction(SIGPROF, nullptr, &current) != 0) {
    return refuse(std::string("sigaction(SIGPROF) failed: ") +
                  std::strerror(errno));
  }
  const bool sigprof_free =
      (current.sa_flags & SA_SIGINFO) == 0 &&
      (current.sa_handler == SIG_DFL || current.sa_handler == SIG_IGN);
  if (!sigprof_free) {
    return refuse(
        "SIGPROF handler already installed by another component; refusing "
        "to displace it");
  }

  {
    const std::scoped_lock data(eng.data_mu);
    eng.opts = options;
    eng.opts.hz = std::clamp(options.hz, 1u, 10000u);
    eng.out.open(options.path, std::ios::trunc);
    if (!eng.out.is_open()) {
      return refuse("cannot open profile file: " + options.path);
    }
    eng.frames.clear();
    eng.next_frame_id = 1;
    eng.written = 0;
    eng.armed_threads = 0;
    snapshot_maps(eng.maps);
    publish_main_text_range(eng.maps);

    // Drop registry entries of threads that exited since the last run
    // (their samples were drained at stop()).
    std::erase_if(eng.threads, [](const std::shared_ptr<ThreadState>& st) {
      return !st->alive.load(std::memory_order_acquire);
    });
  }

  struct sigaction sa {};
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &eng.old_sa) != 0) {
    const std::scoped_lock data(eng.data_mu);
    eng.out.close();
    return refuse(std::string("sigaction(SIGPROF) failed: ") +
                  std::strerror(errno));
  }
  eng.sa_installed = true;

  struct timespec ts {};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  g_origin_mono_ns.store(
      static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec,
      std::memory_order_relaxed);
  g_origin_obs_us.store(now_us(), std::memory_order_relaxed);

  // Arm: per-thread CLOCK_THREAD_CPUTIME_ID timers when the platform has
  // them, otherwise one process-wide ITIMER_PROF.
#if defined(__linux__) && defined(SIGEV_THREAD_ID)
  eng.thread_timers = true;
#else
  eng.thread_timers = false;
#endif
  g_active.store(true, std::memory_order_release);
  profiler_register_thread();  // the caller samples too
  std::uint64_t armed = 0;
  {
    const std::scoped_lock data(eng.data_mu);
    for (const std::shared_ptr<ThreadState>& st : eng.threads) {
      arm_thread_locked(eng, *st);
#if defined(__linux__) && defined(SIGEV_THREAD_ID)
      if (st->timer_created) ++armed;
#endif
    }
  }
  if (eng.thread_timers && armed == 0) {
    // timer_create never worked; fall back to the process-wide clock.
    eng.thread_timers = false;
  }
  if (!eng.thread_timers) {
    struct itimerval itv {};
    const long period_us = 1000000L / static_cast<long>(eng.opts.hz);
    itv.it_interval.tv_sec = period_us / 1000000L;
    itv.it_interval.tv_usec = period_us % 1000000L;
    itv.it_value = itv.it_interval;
    if (setitimer(ITIMER_PROF, &itv, nullptr) != 0) {
      g_active.store(false, std::memory_order_release);
      sigaction(SIGPROF, &eng.old_sa, nullptr);
      eng.sa_installed = false;
      const std::scoped_lock data(eng.data_mu);
      eng.out.close();
      return refuse(std::string("no usable profiling timer: setitimer "
                                "failed: ") +
                    std::strerror(errno));
    }
    eng.itimer_armed = true;
  }

  {
    const std::scoped_lock data(eng.data_mu);
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    w.key("schema").value(kProfileSchema);
    w.key("ev").value("meta");
    w.key("pid").value(std::uint64_t{static_cast<std::uint64_t>(getpid())});
    w.key("hz").value(std::uint64_t{eng.opts.hz});
    w.key("mechanism")
        .value(eng.thread_timers ? "timer_create" : "setitimer");
    w.key("start_us").value(g_origin_obs_us.load(std::memory_order_relaxed));
    w.end_object();
    eng.out << os.str() << '\n';
  }
  eng.drainer = std::jthread(drainer_main);
  eng.running = true;
  eng.reason.clear();
  return true;
}

bool profiler_start_from_env() {
  const char* file = std::getenv("CCMX_PROF_FILE");
  const char* hz = std::getenv("CCMX_PROF_HZ");
  const bool has_file = file != nullptr && file[0] != '\0';
  const bool has_hz = hz != nullptr && hz[0] != '\0';
  if (!has_file && !has_hz) return false;
  ProfilerOptions options;
  options.path = has_file ? file : "profile.jsonl";
  options.hz = env_hz(97);
  return profiler_start(options);
}

ProfilerLedger profiler_stop() {
  Engine& eng = engine();
  const std::scoped_lock control(eng.mu);
  if (!eng.running) return eng.final_ledger;
  g_active.store(false, std::memory_order_release);
  {
    const std::scoped_lock data(eng.data_mu);
    for (const std::shared_ptr<ThreadState>& st : eng.threads) {
      disarm_thread_locked(*st);
    }
  }
  if (eng.itimer_armed) {
    struct itimerval zero {};
    setitimer(ITIMER_PROF, &zero, nullptr);
    eng.itimer_armed = false;
  }
  if (eng.sa_installed) {
    sigaction(SIGPROF, &eng.old_sa, nullptr);
    eng.sa_installed = false;
  }
  eng.drainer.request_stop();
  eng.cv.notify_all();
  if (eng.drainer.joinable()) eng.drainer.join();

  ProfilerLedger ledger;
  {
    const std::scoped_lock data(eng.data_mu);
    sweep_locked(eng);  // final drain: nothing left in the rings
    ledger = ledger_locked(eng);
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    w.key("ev").value("ledger");
    w.key("captured").value(ledger.captured);
    w.key("written").value(ledger.written);
    w.key("dropped").value(ledger.dropped);
    w.key("truncated").value(ledger.truncated);
    w.key("threads").value(ledger.threads);
    w.end_object();
    eng.out << os.str() << '\n';
    eng.out.close();
  }
  Counter("obs.prof.captured").add(ledger.captured);
  Counter("obs.prof.written").add(ledger.written);
  Counter("obs.prof.dropped").add(ledger.dropped);
  Counter("obs.prof.truncated").add(ledger.truncated);
  eng.final_ledger = ledger;
  eng.running = false;
  return ledger;
}

bool profiler_running() noexcept {
  Engine& eng = engine();
  const std::scoped_lock control(eng.mu);
  return eng.running;
}

std::string profiler_unavailable_reason() {
  Engine& eng = engine();
  const std::scoped_lock control(eng.mu);
  return eng.reason;
}

ProfilerLedger profiler_ledger() {
  Engine& eng = engine();
  const std::scoped_lock data(eng.data_mu);
  return ledger_locked(eng);
}

#else  // !(__unix__ || __APPLE__): no POSIX signals — degraded mode.

void profiler_register_thread() {}
bool profiler_start(const ProfilerOptions&) { return false; }
bool profiler_start_from_env() { return false; }
ProfilerLedger profiler_stop() { return {}; }
bool profiler_running() noexcept { return false; }
std::string profiler_unavailable_reason() {
  return "sampling profiler requires POSIX signals";
}
ProfilerLedger profiler_ledger() { return {}; }

#endif

}  // namespace ccmx::obs

#endif  // CCMX_OBS_DISABLED
