#include "obs/obs.hpp"

#ifndef CCMX_OBS_DISABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/json.hpp"
#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

constexpr std::size_t kBuckets = 128;  // frexp exponents -64..63

/// Maps a value to its power-of-two bucket; bucket b covers
/// [2^(b-65), 2^(b-64)).  Non-positive values land in bucket 0.
std::size_t bucket_of(double value) noexcept {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  (void)std::frexp(value, &exp);  // value = mantissa * 2^exp, mantissa in [0.5,1)
  const int b = std::clamp(exp + 64, 0, util::narrow_cast<int>(kBuckets) - 1);
  return static_cast<std::size_t>(b);
}

/// Geometric midpoint of bucket b (inverse of bucket_of up to factor 2).
double bucket_mid(std::size_t b) noexcept {
  return std::ldexp(1.5, util::narrow_cast<int>(b) - 65);
}

struct HistData {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};
};

struct Registry;
Registry& registry();

/// Hard cap on distinct counter names (ids index fixed per-thread slot
/// arrays, so slots never reallocate while workers are adding).
constexpr std::size_t kMaxCounters = 256;

/// Per-thread counter slots; folds into the registry on thread exit.
/// Slots are relaxed atomics: the owning thread is the only writer, but
/// Counter::value() and snapshot() may read them from other threads
/// mid-sweep (e.g. a progress reporter), which TSan flags as a data race
/// on plain integers.  Relaxed ops keep add() at one uncontended RMW.
struct ThreadSink {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> slots{};
  ThreadSink();
  ~ThreadSink();
  void fold(bool unregister);
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> counter_names;
  std::vector<std::uint64_t> folded_counters;
  std::vector<ThreadSink*> live_sinks;
  std::unordered_map<std::string, std::uint32_t> hist_ids;
  std::vector<std::string> hist_names;
  std::vector<HistData> hists;
  std::vector<std::pair<std::string, std::string>> attributes;

  std::mutex event_mu;
  std::unique_ptr<std::ofstream> event_out;
  bool event_sink_probed = false;

  std::uint32_t intern_counter(std::string_view name) {
    const std::scoped_lock lock(mu);
    const auto [it, fresh] =
        counter_ids.try_emplace(
            std::string(name),
            util::narrow_cast<std::uint32_t>(counter_names.size()));
    if (fresh) {
      CCMX_REQUIRE(counter_names.size() < kMaxCounters,
                   "too many distinct obs counters");
      counter_names.emplace_back(name);
      folded_counters.push_back(0);
    }
    return it->second;
  }

  std::uint32_t intern_hist(std::string_view name) {
    const std::scoped_lock lock(mu);
    const auto [it, fresh] = hist_ids.try_emplace(
        std::string(name),
        util::narrow_cast<std::uint32_t>(hist_names.size()));
    if (fresh) {
      hist_names.emplace_back(name);
      hists.emplace_back();
    }
    return it->second;
  }
};

Registry& registry() {
  static Registry reg;
  return reg;
}

ThreadSink::ThreadSink() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  reg.live_sinks.push_back(this);
}

ThreadSink::~ThreadSink() { fold(/*unregister=*/true); }

void ThreadSink::fold(bool unregister) {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  for (std::size_t i = 0; i < reg.folded_counters.size(); ++i) {
    reg.folded_counters[i] += slots[i].exchange(0, std::memory_order_relaxed);
  }
  if (unregister) {
    reg.live_sinks.erase(
        std::remove(reg.live_sinks.begin(), reg.live_sinks.end(), this),
        reg.live_sinks.end());
  }
}

ThreadSink& thread_sink() {
  thread_local ThreadSink sink;
  return sink;
}

/// Innermost-first stack of armed span ids on this thread; ScopedSpan
/// pushes on construction and pops on destruction, so back() is always
/// the parent of the next span opened here.
std::vector<std::uint64_t>& span_stack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

bool env_truthy(const char* name) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return false;
  const std::string_view v(raw);
  return v != "0" && v != "false" && v != "off" && v != "no";
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_truthy("CCMX_TRACE") ||
                                std::getenv("CCMX_TRACE_FILE") != nullptr};
  return flag;
}

HistSummary summarize(const HistData& h) {
  HistSummary out;
  out.count = h.count;
  out.min = h.min;
  out.max = h.max;
  out.sum = h.sum;
  if (h.count == 0) return out;
  const auto quantile = [&](double p) {
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(h.count)));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cumulative += h.buckets[b];
      if (cumulative >= target) {
        return std::clamp(bucket_mid(b), h.min, h.max);
      }
    }
    return h.max;
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  return out;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::int64_t now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               origin)
      .count();
}

Counter::Counter(std::string_view name)
    : id_(registry().intern_counter(name)) {}

void Counter::add(std::uint64_t delta) const noexcept {
  if (!enabled()) return;
  thread_sink().slots[id_].fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  std::uint64_t total =
      id_ < reg.folded_counters.size() ? reg.folded_counters[id_] : 0;
  for (const ThreadSink* sink : reg.live_sinks) {
    total += sink->slots[id_].load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::string_view name)
    : id_(registry().intern_hist(name)) {}

void Histogram::record(double value) const {
  if (!enabled()) return;
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  HistData& h = reg.hists[id_];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.sum += value;
  ++h.count;
  ++h.buckets[bucket_of(value)];
}

std::uint32_t thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t current_span_id() noexcept {
  const std::vector<std::uint64_t>& stack = span_stack();
  return stack.empty() ? 0 : stack.back();
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!enabled()) return;
  name_ = std::string(name);
  id_ = next_span_id();
  parent_ = current_span_id();
  span_stack().push_back(id_);
  start_us_ = now_us();
  armed_ = true;
}

void ScopedSpan::arg(std::string_view key, std::string_view value) {
  if (!armed_ || !event_sink_open()) return;
  if (!args_json_.empty()) args_json_ += ',';
  args_json_ += '"' + json::escape(key) + "\":\"" + json::escape(value) + '"';
}

void ScopedSpan::arg(std::string_view key, std::uint64_t value) {
  if (!armed_ || !event_sink_open()) return;
  if (!args_json_.empty()) args_json_ += ',';
  args_json_ += '"' + json::escape(key) + "\":" + std::to_string(value);
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  span_stack().pop_back();
  const std::int64_t end_us = now_us();
  const double secs = static_cast<double>(end_us - start_us_) * 1e-6;
  Histogram("span." + name_).record(secs);
  if (event_sink_open()) {
    // Emitted at scope exit (the duration is only known now), but t_us
    // is the *construction* time: readers order spans by t_us, not by
    // line number, or nested spans would appear child-before-parent.
    std::string event = "{\"ev\":\"span\",\"id\":" + std::to_string(id_) +
                        ",\"parent\":" + std::to_string(parent_) +
                        ",\"tid\":" + std::to_string(thread_id()) +
                        ",\"name\":\"" + json::escape(name_) +
                        "\",\"t_us\":" + std::to_string(start_us_) +
                        ",\"dur_us\":" + std::to_string(end_us - start_us_);
    if (!args_json_.empty()) event += ",\"args\":{" + args_json_ + '}';
    event += '}';
    emit_event(event);
  }
}

double ScopedSpan::seconds() const noexcept {
  if (!armed_) return 0.0;
  return static_cast<double>(now_us() - start_us_) * 1e-6;
}

void set_attribute(std::string_view key, std::string_view value) {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  for (auto& [k, v] : reg.attributes) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  reg.attributes.emplace_back(std::string(key), std::string(value));
}

bool event_sink_open() noexcept {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.event_mu);
  if (!reg.event_sink_probed) {
    reg.event_sink_probed = true;
    if (const char* path = std::getenv("CCMX_TRACE_FILE")) {
      auto out = std::make_unique<std::ofstream>(path, std::ios::app);
      if (out->is_open()) reg.event_out = std::move(out);
    }
  }
  return reg.event_out != nullptr;
}

void emit_event(std::string_view json_object) {
  if (!event_sink_open()) return;
  Registry& reg = registry();
  const std::scoped_lock lock(reg.event_mu);
  *reg.event_out << json_object << '\n';
  reg.event_out->flush();
}

void flush_thread() { thread_sink().fold(/*unregister=*/false); }

Snapshot snapshot() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  Snapshot snap;
  snap.counters.reserve(reg.counter_names.size());
  for (std::size_t i = 0; i < reg.counter_names.size(); ++i) {
    std::uint64_t total = i < reg.folded_counters.size()
                              ? reg.folded_counters[i]
                              : 0;
    for (const ThreadSink* sink : reg.live_sinks) {
      total += sink->slots[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(reg.counter_names[i], total);
  }
  snap.histograms.reserve(reg.hist_names.size());
  for (std::size_t i = 0; i < reg.hist_names.size(); ++i) {
    snap.histograms.emplace_back(reg.hist_names[i], summarize(reg.hists[i]));
  }
  snap.attributes = reg.attributes;
  return snap;
}

void reset_values() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  std::fill(reg.folded_counters.begin(), reg.folded_counters.end(), 0);
  for (ThreadSink* sink : reg.live_sinks) {
    for (std::atomic<std::uint64_t>& slot : sink->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
  for (HistData& h : reg.hists) h = HistData{};
  reg.attributes.clear();
}

}  // namespace ccmx::obs

#endif  // CCMX_OBS_DISABLED
