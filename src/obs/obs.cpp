#include "obs/obs.hpp"

#ifndef CCMX_OBS_DISABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <stop_token>
#include <thread>
#include <unordered_map>

#include "obs/json.hpp"
#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

constexpr std::size_t kBuckets = 128;  // frexp exponents -64..63

/// Maps a value to its power-of-two bucket; bucket b covers
/// [2^(b-65), 2^(b-64)).  Non-positive values land in bucket 0.
std::size_t bucket_of(double value) noexcept {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  (void)std::frexp(value, &exp);  // value = mantissa * 2^exp, mantissa in [0.5,1)
  const int b = std::clamp(exp + 64, 0, util::narrow_cast<int>(kBuckets) - 1);
  return static_cast<std::size_t>(b);
}

struct HistData {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};
};

struct Registry;
Registry& registry();
struct ThreadEventBuffer;
class TraceSink;

/// Hard cap on distinct counter names (ids index fixed per-thread slot
/// arrays, so slots never reallocate while workers are adding).
constexpr std::size_t kMaxCounters = 256;

/// Per-thread counter slots; folds into the registry on thread exit.
/// Slots are relaxed atomics: the owning thread is the only writer, but
/// Counter::value() and snapshot() may read them from other threads
/// mid-sweep (e.g. a progress reporter), which TSan flags as a data race
/// on plain integers.  Relaxed ops keep add() at one uncontended RMW.
struct ThreadSink {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> slots{};
  ThreadSink();
  ~ThreadSink();
  void fold(bool unregister);
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::uint32_t> counter_ids;
  std::vector<std::string> counter_names;
  std::vector<std::uint64_t> folded_counters;
  std::vector<ThreadSink*> live_sinks;
  std::unordered_map<std::string, std::uint32_t> hist_ids;
  std::vector<std::string> hist_names;
  std::vector<HistData> hists;
  std::vector<std::pair<std::string, std::string>> attributes;

  /// Guards `sink` and the probe/report flags; only ever held alone.
  std::mutex trace_mu;
  bool env_probed = false;
  bool open_failure_reported = false;
  /// Guards event_buffers (thread registration vs the drainer's sweep).
  std::mutex buffers_mu;
  std::vector<ThreadEventBuffer*> event_buffers;

  std::uint32_t intern_counter(std::string_view name) {
    const std::scoped_lock lock(mu);
    const auto [it, fresh] =
        counter_ids.try_emplace(
            std::string(name),
            util::narrow_cast<std::uint32_t>(counter_names.size()));
    if (fresh) {
      CCMX_REQUIRE(counter_names.size() < kMaxCounters,
                   "too many distinct obs counters");
      counter_names.emplace_back(name);
      folded_counters.push_back(0);
    }
    return it->second;
  }

  std::uint32_t intern_hist(std::string_view name) {
    const std::scoped_lock lock(mu);
    const auto [it, fresh] = hist_ids.try_emplace(
        std::string(name),
        util::narrow_cast<std::uint32_t>(hist_names.size()));
    if (fresh) {
      hist_names.emplace_back(name);
      hists.emplace_back();
    }
    return it->second;
  }

  /// Declared last: destroyed first at process exit, so the drainer's
  /// final sweep (joined inside ~TraceSink) still finds every mutex,
  /// buffer list, and counter above alive.
  std::shared_ptr<TraceSink> sink;
};

Registry& registry() {
  static Registry reg;
  return reg;
}

ThreadSink::ThreadSink() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  reg.live_sinks.push_back(this);
}

ThreadSink::~ThreadSink() { fold(/*unregister=*/true); }

void ThreadSink::fold(bool unregister) {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  for (std::size_t i = 0; i < reg.folded_counters.size(); ++i) {
    reg.folded_counters[i] += slots[i].exchange(0, std::memory_order_relaxed);
  }
  if (unregister) {
    reg.live_sinks.erase(
        std::remove(reg.live_sinks.begin(), reg.live_sinks.end(), this),
        reg.live_sinks.end());
  }
}

ThreadSink& thread_sink() {
  thread_local ThreadSink sink;
  return sink;
}

// --------------------------------------------------------- trace pipeline
//
// Async JSONL path: emit_event appends to a per-thread staging buffer
// (ThreadEventBuffer); a full buffer moves wholesale into the sink's
// bounded MPSC ring; a dedicated drainer jthread sweeps straggler
// buffers, drains the ring, and writes batched lines, flushing on a
// clock.  Lock order is strictly
//     Registry::buffers_mu  ->  ThreadEventBuffer::mu  ->  TraceSink::mu
// (Registry::mu, the counter mutex, is a leaf acquirable under any of
// them; Registry::trace_mu is only ever held alone).  Emitters never
// hold their buffer mutex across a ring push — a push blocked on
// backpressure would deadlock the drainer's sweep — so each buffer
// carries a `pushing` flag that makes the sweep skip it while its owner
// is mid-push, preserving per-thread FIFO order in the file.

/// Fast-path gate for emit_event / event_sink_open: one atomic load
/// instead of a mutex.  Unknown -> {None, Async, Sync} on the lazy env
/// probe or an explicit open; anything -> None on close.
constexpr std::uint8_t kSinkUnknown = 0;
constexpr std::uint8_t kSinkNone = 1;
constexpr std::uint8_t kSinkAsync = 2;
constexpr std::uint8_t kSinkSync = 3;
std::atomic<std::uint8_t> g_sink_mode{kSinkUnknown};

constexpr std::size_t kDefaultRingCapacity = 65536;  // events in the ring
constexpr std::size_t kEmitBatch = 64;  // buffered events per ring push
// Overhead metering samples one emit in kMeterPeriod per thread and
// scales — metering every event would cost two clock reads per emit,
// several times the buffered append it is supposed to measure.
constexpr std::uint32_t kMeterPeriod = 64;
constexpr std::chrono::milliseconds kDrainInterval{50};  // flush clock

// Conservation ledger, validated by trace_reader against the run report:
// lines-in-file + obs.trace.dropped == obs.trace.emitted at every
// quiescent point, so a drop can never pass unnoticed.  Both sides count
// at batch granularity — an event joins `emitted` when its batch leaves
// the thread buffer, not per emit call — so events still staged in a
// buffer are invisible to the ledger until a flush publishes them.
const Counter g_emitted("obs.trace.emitted");
const Counter g_dropped("obs.trace.dropped");
const Counter g_open_failed("obs.trace.open_failed");
const Counter g_batches("obs.trace.batches");
// Self-overhead meters (summed nanoseconds): what observing costs.
const Counter g_emit_ns("obs.overhead.emit_ns");
const Counter g_block_ns("obs.overhead.block_ns");
const Counter g_drain_ns("obs.overhead.drain_ns");
const Counter g_flush_ns("obs.overhead.flush_ns");

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Per-thread staging buffer for emitted event lines.  The owning thread
/// appends (and pushes full batches to the ring); the drainer sweeps
/// residue that never reached the batch threshold.  Lines live in one
/// newline-terminated byte blob — appending is an amortized memcpy, not
/// a per-event heap allocation — with `count` carrying the event total
/// for the conservation ledger and ring capacity accounting.
struct ThreadEventBuffer {
  std::mutex mu;
  std::string bytes;
  std::size_t count = 0;
  /// True while the owner pushes a moved-out batch into the ring; the
  /// sweep skips the buffer then, or newer residue could overtake the
  /// in-flight batch and break per-thread file order.
  std::atomic<bool> pushing{false};
  ThreadEventBuffer();
  ~ThreadEventBuffer();
};

class TraceSink {
 public:
  TraceSink(std::ofstream out, TracePolicy policy, std::size_t capacity);
  ~TraceSink() { shutdown(); }
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Appends one thread's batch (a newline-terminated blob of `count`
  /// lines) to the ring under the backpressure policy.  Admission is
  /// batch-granular: a batch that cannot be placed (ring at event
  /// capacity under kDrop, sink already closed) is dropped whole and all
  /// `count` events land in obs.trace.dropped; under kBlock a batch
  /// admitted just below capacity may overshoot it by at most
  /// kEmitBatch-1 events until the drainer's next pass.
  void push_batch(std::string&& bytes, std::size_t count);

  /// Drainer-only: ring insertion ignoring capacity (the drainer empties
  /// the ring right after, so the overshoot is transient).
  void force_push(std::string&& bytes, std::size_t count);

  /// One line, written and flushed under the sink mutex — the
  /// TracePolicy::kSync ablation path.
  void write_sync(std::string_view line);

  /// Blocks until everything pushed before the call is written and the
  /// stream is flushed.
  void flush_and_wait();

  /// Drains, flushes, closes, and joins the drainer.  Late pushes are
  /// counted as drops.  Idempotent.
  void shutdown();

 private:
  void drain_main(std::stop_token stop);
  /// Moves straggler per-thread buffers into the ring.  Holds each
  /// buffer's mutex across its ring insertion so the owner cannot slip a
  /// newer batch underneath the swept (older) residue.
  void sweep_buffers();

  const TracePolicy policy_;
  const std::size_t capacity_;
  std::ofstream out_;  // drainer-owned after construction (sync: under mu_)

  /// One thread's staged batch in the ring: a blob of newline-terminated
  /// lines plus its event count for capacity/ledger accounting.
  struct EventBatch {
    std::string bytes;
    std::size_t count = 0;
  };

  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable_any wake_;  // drainer's wait, stop_token-aware
  std::condition_variable flush_cv_;
  std::deque<EventBatch> ring_;
  std::size_t ring_events_ = 0;  // sum of ring_ batch counts
  bool closed_ = false;
  std::uint64_t flush_asked_ = 0;
  std::uint64_t flush_done_ = 0;

  // Last member: the drainer joins (inside shutdown) while everything
  // above is still alive.
  std::jthread drainer_;
};

ThreadEventBuffer::ThreadEventBuffer() {
  // Force the ThreadSink into existence first: thread_locals destroy in
  // reverse construction order, so ~ThreadEventBuffer can still count
  // drops through the counter slots.
  (void)thread_sink();
  Registry& reg = registry();
  const std::scoped_lock lock(reg.buffers_mu);
  reg.event_buffers.push_back(this);
}

ThreadEventBuffer::~ThreadEventBuffer() {
  Registry& reg = registry();
  {
    const std::scoped_lock lock(reg.buffers_mu);
    reg.event_buffers.erase(
        std::remove(reg.event_buffers.begin(), reg.event_buffers.end(), this),
        reg.event_buffers.end());
  }
  if (count == 0) return;
  std::shared_ptr<TraceSink> sink;
  {
    const std::scoped_lock lock(reg.trace_mu);
    sink = reg.sink;
  }
  g_emitted.add(count);
  if (sink != nullptr) {
    sink->push_batch(std::move(bytes), count);
  } else {
    // Emitted but never written: the exiting thread outlived the sink.
    g_dropped.add(count);
  }
}

ThreadEventBuffer& thread_event_buffer() {
  thread_local ThreadEventBuffer buffer;
  return buffer;
}

std::shared_ptr<TraceSink> sink_ref() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.trace_mu);
  return reg.sink;
}

TraceSink::TraceSink(std::ofstream out, TracePolicy policy,
                     std::size_t capacity)
    : policy_(policy),
      capacity_(capacity == 0 ? kDefaultRingCapacity : capacity),
      out_(std::move(out)) {
  if (policy_ != TracePolicy::kSync) {
    drainer_ =
        std::jthread([this](std::stop_token stop) { drain_main(stop); });
  }
}

void TraceSink::push_batch(std::string&& bytes, std::size_t count) {
  bool dropped = false;
  {
    std::unique_lock lock(mu_);
    if (policy_ == TracePolicy::kBlock && !closed_ &&
        ring_events_ >= capacity_) {
      const auto t0 = std::chrono::steady_clock::now();
      wake_.notify_one();
      not_full_.wait(lock,
                     [&] { return closed_ || ring_events_ < capacity_; });
      g_block_ns.add(ns_since(t0));
    }
    if (closed_ || ring_events_ >= capacity_) {
      dropped = true;
    } else {
      ring_events_ += count;
      ring_.push_back(EventBatch{std::move(bytes), count});
    }
  }
  if (dropped) {
    g_dropped.add(count);
  } else {
    wake_.notify_one();
  }
}

void TraceSink::force_push(std::string&& bytes, std::size_t count) {
  const std::scoped_lock lock(mu_);
  ring_events_ += count;
  ring_.push_back(EventBatch{std::move(bytes), count});
}

void TraceSink::write_sync(std::string_view line) {
  const std::scoped_lock lock(mu_);
  if (closed_) {
    g_dropped.add();
    return;
  }
  out_ << line << '\n';
  out_.flush();
}

void TraceSink::flush_and_wait() {
  std::unique_lock lock(mu_);
  if (closed_) return;
  if (!drainer_.joinable()) {  // sync mode: every write already flushed
    out_.flush();
    return;
  }
  const std::uint64_t gen = ++flush_asked_;
  wake_.notify_one();
  flush_cv_.wait(lock, [&] { return flush_done_ >= gen || closed_; });
}

void TraceSink::shutdown() {
  {
    const std::scoped_lock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  not_full_.notify_all();
  flush_cv_.notify_all();
  if (drainer_.joinable()) {
    drainer_.request_stop();
    wake_.notify_all();
    drainer_.join();  // the drainer's final pass sweeps, drains, flushes
  } else {
    const std::scoped_lock lock(mu_);
    if (out_.is_open()) out_.flush();
  }
}

void TraceSink::sweep_buffers() {
  Registry& reg = registry();
  const std::scoped_lock buffers_lock(reg.buffers_mu);
  for (ThreadEventBuffer* buffer : reg.event_buffers) {
    const std::scoped_lock buffer_lock(buffer->mu);
    if (buffer->count == 0 ||
        buffer->pushing.load(std::memory_order_acquire)) {
      continue;
    }
    g_emitted.add(buffer->count);
    force_push(std::move(buffer->bytes), buffer->count);
    buffer->bytes.clear();
    buffer->count = 0;
  }
}

void TraceSink::drain_main(std::stop_token stop) {
  std::vector<EventBatch> batch;
  std::uint64_t done = 0;  // drainer-local mirror of flush_done_
  auto last_flush = std::chrono::steady_clock::now();
  for (;;) {
    bool stopping = false;
    bool idle_tick = false;
    std::uint64_t flush_target = 0;
    {
      std::unique_lock lock(mu_);
      const bool woke = wake_.wait_for(lock, stop, kDrainInterval, [&] {
        return !ring_.empty() || flush_asked_ > flush_done_ || closed_;
      });
      idle_tick = !woke;
      stopping = stop.stop_requested() || closed_;
      flush_target = flush_asked_;
    }
    const auto d0 = std::chrono::steady_clock::now();
    if (stopping || idle_tick || flush_target > done) {
      // Catch events idling below the batch threshold in per-thread
      // buffers; skipped while the ring is hot so the sweep's buffer
      // locking stays off the emitters' fast path.
      sweep_buffers();
    }
    {
      const std::scoped_lock lock(mu_);
      while (!ring_.empty()) {
        batch.push_back(std::move(ring_.front()));
        ring_.pop_front();
      }
      ring_events_ = 0;
    }
    not_full_.notify_all();
    if (!batch.empty()) {
      for (const EventBatch& b : batch) {
        out_.write(b.bytes.data(),
                   static_cast<std::streamsize>(b.bytes.size()));
      }
      batch.clear();
      g_batches.add();
      g_drain_ns.add(ns_since(d0));
    }
    const bool flush_now =
        stopping || flush_target > done ||
        std::chrono::steady_clock::now() - last_flush >= kDrainInterval;
    if (flush_now) {
      const auto f0 = std::chrono::steady_clock::now();
      out_.flush();
      g_flush_ns.add(ns_since(f0));
      last_flush = f0;
      {
        const std::scoped_lock lock(mu_);
        if (stopping) flush_target = flush_asked_;  // release every waiter
        flush_done_ = std::max(flush_done_, flush_target);
        done = flush_done_;
      }
      flush_cv_.notify_all();
    }
    if (stopping) {
      // Its thread-local ThreadSink folds as this jthread exits, so the
      // drain/flush meters above land in the registry before join()
      // returns.
      return;
    }
  }
}

TracePolicy policy_from_env() noexcept {
  const char* raw = std::getenv("CCMX_TRACE_POLICY");
  if (raw == nullptr) return TracePolicy::kBlock;
  const std::string_view v(raw);
  if (v == "drop") return TracePolicy::kDrop;
  if (v == "sync") return TracePolicy::kSync;
  return TracePolicy::kBlock;
}

std::size_t capacity_from_env() noexcept {
  if (const char* raw = std::getenv("CCMX_TRACE_BUFFER")) {
    const unsigned long long v = std::strtoull(raw, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;  // pick the default
}

/// Opens the sink; reg.trace_mu must be held by the caller.  On failure
/// counts obs.trace.open_failed and reports to stderr once per process.
bool open_trace_sink_locked(Registry& reg, const TraceSinkOptions& options) {
  std::ofstream out(options.path, std::ios::app);
  if (!out.is_open()) {
    g_open_failed.add();
    if (!reg.open_failure_reported) {
      reg.open_failure_reported = true;
      std::fprintf(stderr,
                   "ccmx: cannot open trace file '%s': trace events will be "
                   "dropped (see obs.trace.open_failed)\n",
                   options.path.c_str());
    }
    g_sink_mode.store(kSinkNone, std::memory_order_release);
    return false;
  }
  reg.sink = std::make_shared<TraceSink>(std::move(out), options.policy,
                                         options.capacity);
  g_sink_mode.store(
      options.policy == TracePolicy::kSync ? kSinkSync : kSinkAsync,
      std::memory_order_release);
  return true;
}

/// Lazily opens the environment-configured sink (CCMX_TRACE_FILE +
/// CCMX_TRACE_POLICY + CCMX_TRACE_BUFFER) the first time anything asks.
void probe_env_sink() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.trace_mu);
  if (reg.env_probed) return;  // another thread probed first
  reg.env_probed = true;
  const char* path = std::getenv("CCMX_TRACE_FILE");
  if (path == nullptr || path[0] == '\0') {
    g_sink_mode.store(kSinkNone, std::memory_order_release);
    return;
  }
  TraceSinkOptions options;
  options.path = path;
  options.policy = policy_from_env();
  options.capacity = capacity_from_env();
  (void)open_trace_sink_locked(reg, options);
}

/// Moves this thread's buffered lines into the ring (backpressure policy
/// applies) without waiting for the write.
void publish_thread_buffer() {
  if (g_sink_mode.load(std::memory_order_acquire) != kSinkAsync) return;
  ThreadEventBuffer& buffer = thread_event_buffer();
  std::string batch;
  std::size_t count = 0;
  {
    const std::scoped_lock lock(buffer.mu);
    if (buffer.count == 0) return;
    batch = std::move(buffer.bytes);
    count = buffer.count;
    buffer.bytes.clear();
    buffer.count = 0;
    buffer.pushing.store(true, std::memory_order_release);
  }
  g_emitted.add(count);
  if (const std::shared_ptr<TraceSink> sink = sink_ref()) {
    sink->push_batch(std::move(batch), count);
  } else {
    g_dropped.add(count);
  }
  buffer.pushing.store(false, std::memory_order_release);
}

/// Innermost-first stack of armed span ids on this thread; ScopedSpan
/// pushes on construction and pops on destruction, so back() is always
/// the parent of the next span opened here.
std::vector<std::uint64_t>& span_stack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

/// Mirror of span_stack().back() (0 when empty) as a thread-local
/// relaxed atomic.  The SIGPROF sampling profiler attributes each
/// sample to the enclosing span from its signal handler, which must
/// never touch the vector (push_back may allocate, and a signal landing
/// mid-reallocation would read freed memory); ScopedSpan keeps the
/// mirror in lockstep with every push/pop.  Constant-initialized, so
/// the TLS slot needs no lazy guard — a plain relaxed load is all the
/// handler does.
std::atomic<std::uint64_t>& current_span_cell() noexcept {
  thread_local std::atomic<std::uint64_t> cell{0};
  return cell;
}

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

bool env_truthy(const char* name) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return false;
  const std::string_view v(raw);
  return v != "0" && v != "false" && v != "off" && v != "no";
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_truthy("CCMX_TRACE") ||
                                std::getenv("CCMX_TRACE_FILE") != nullptr};
  return flag;
}

HistSummary summarize(const HistData& h) {
  HistSummary out;
  out.count = h.count;
  out.min = h.min;
  out.max = h.max;
  out.sum = h.sum;
  if (h.count == 0) return out;
  const auto quantile = [&](double p) {
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(h.count)));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (cumulative + h.buckets[b] < target) {
        cumulative += h.buckets[b];
        continue;
      }
      // Linear interpolation inside the log2 bucket [lo, 2*lo): assume
      // the bucket's samples are spread uniformly, place the target at
      // its rank fraction.  Factor-of-2 boundary accuracy becomes
      // width-proportional accuracy; the clamp keeps one-bucket
      // histograms inside the observed [min, max].
      const double lo = std::ldexp(1.0, util::narrow_cast<int>(b) - 65);
      const double fraction = static_cast<double>(target - cumulative) /
                              static_cast<double>(h.buckets[b]);
      return std::clamp(lo + fraction * lo, h.min, h.max);
    }
    return h.max;
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  return out;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::int64_t now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               origin)
      .count();
}

Counter::Counter(std::string_view name)
    : id_(registry().intern_counter(name)) {}

void Counter::add(std::uint64_t delta) const noexcept {
  if (!enabled()) return;
  thread_sink().slots[id_].fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  std::uint64_t total =
      id_ < reg.folded_counters.size() ? reg.folded_counters[id_] : 0;
  for (const ThreadSink* sink : reg.live_sinks) {
    total += sink->slots[id_].load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::string_view name)
    : id_(registry().intern_hist(name)) {}

void Histogram::record(double value) const {
  if (!enabled()) return;
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  HistData& h = reg.hists[id_];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.sum += value;
  ++h.count;
  ++h.buckets[bucket_of(value)];
}

std::uint32_t thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t current_span_id() noexcept {
  return current_span_cell().load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!enabled()) return;
  name_ = std::string(name);
  id_ = next_span_id();
  parent_ = current_span_id();
  span_stack().push_back(id_);
  current_span_cell().store(id_, std::memory_order_relaxed);
  start_us_ = now_us();
  armed_ = true;
}

void ScopedSpan::arg(std::string_view key, std::string_view value) {
  if (!armed_ || !event_sink_open()) return;
  if (!args_json_.empty()) args_json_ += ',';
  args_json_ += '"' + json::escape(key) + "\":\"" + json::escape(value) + '"';
}

void ScopedSpan::arg(std::string_view key, std::uint64_t value) {
  if (!armed_ || !event_sink_open()) return;
  if (!args_json_.empty()) args_json_ += ',';
  args_json_ += '"' + json::escape(key) + "\":" + std::to_string(value);
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  span_stack().pop_back();
  current_span_cell().store(parent_, std::memory_order_relaxed);
  const std::int64_t end_us = now_us();
  const double secs = static_cast<double>(end_us - start_us_) * 1e-6;
  Histogram("span." + name_).record(secs);
  if (event_sink_open()) {
    // Emitted at scope exit (the duration is only known now), but t_us
    // is the *construction* time: readers order spans by t_us, not by
    // line number, or nested spans would appear child-before-parent.
    std::string event = "{\"ev\":\"span\",\"id\":" + std::to_string(id_) +
                        ",\"parent\":" + std::to_string(parent_) +
                        ",\"tid\":" + std::to_string(thread_id()) +
                        ",\"name\":\"" + json::escape(name_) +
                        "\",\"t_us\":" + std::to_string(start_us_) +
                        ",\"dur_us\":" + std::to_string(end_us - start_us_);
    if (!args_json_.empty()) event += ",\"args\":{" + args_json_ + '}';
    event += '}';
    emit_event(event);
  }
}

double ScopedSpan::seconds() const noexcept {
  if (!armed_) return 0.0;
  return static_cast<double>(now_us() - start_us_) * 1e-6;
}

void set_attribute(std::string_view key, std::string_view value) {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  for (auto& [k, v] : reg.attributes) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  reg.attributes.emplace_back(std::string(key), std::string(value));
}

bool event_sink_open() noexcept {
  std::uint8_t mode = g_sink_mode.load(std::memory_order_acquire);
  if (mode == kSinkUnknown) {
    probe_env_sink();
    mode = g_sink_mode.load(std::memory_order_acquire);
  }
  return mode == kSinkAsync || mode == kSinkSync;
}

void emit_event(std::string_view json_object) {
  std::uint8_t mode = g_sink_mode.load(std::memory_order_acquire);
  if (mode == kSinkUnknown) {
    probe_env_sink();
    mode = g_sink_mode.load(std::memory_order_acquire);
  }
  if (mode != kSinkAsync && mode != kSinkSync) return;
  // Sampled self-metering: one emit in kMeterPeriod per thread pays the
  // two clock reads, scaled back up, so obs.overhead.emit_ns stays an
  // unbiased estimate without the clocks dominating the fast path.
  thread_local std::uint32_t meter_tick = 0;
  const bool metered = (meter_tick++ % kMeterPeriod) == 0;
  const auto t0 = metered ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
  if (mode == kSinkSync) {
    g_emitted.add();
    if (const std::shared_ptr<TraceSink> sink = sink_ref()) {
      sink->write_sync(json_object);
    } else {
      g_dropped.add();  // sink closed between the gate and here
    }
  } else {
    ThreadEventBuffer& buffer = thread_event_buffer();
    std::string batch;
    std::size_t count = 0;
    {
      const std::scoped_lock lock(buffer.mu);
      buffer.bytes.append(json_object);
      buffer.bytes.push_back('\n');
      ++buffer.count;
      if (buffer.count >= kEmitBatch) {
        batch = std::move(buffer.bytes);
        count = buffer.count;
        buffer.bytes.clear();
        buffer.bytes.reserve(batch.size());  // one alloc per batch, not ~log n
        buffer.count = 0;
        buffer.pushing.store(true, std::memory_order_release);
      }
    }
    if (count > 0) {
      g_emitted.add(count);
      if (const std::shared_ptr<TraceSink> sink = sink_ref()) {
        sink->push_batch(std::move(batch), count);
      } else {
        g_dropped.add(count);
      }
      buffer.pushing.store(false, std::memory_order_release);
    }
  }
  if (metered) g_emit_ns.add(ns_since(t0) * kMeterPeriod);
}

bool open_trace_sink(const TraceSinkOptions& options) {
  close_trace_sink();
  Registry& reg = registry();
  // Clear (and account) residue an emitter buffered after the previous
  // sink closed: those lines will never be written and must not leak
  // into the new sink's file.  They never reached the ledger (emitted is
  // counted at batch move-out), so book both sides here to keep the loss
  // visible and the ledger balanced.
  std::size_t stale = 0;
  {
    const std::scoped_lock lock(reg.buffers_mu);
    for (ThreadEventBuffer* buffer : reg.event_buffers) {
      const std::scoped_lock buffer_lock(buffer->mu);
      stale += buffer->count;
      buffer->bytes.clear();
      buffer->count = 0;
    }
  }
  if (stale > 0) {
    g_emitted.add(stale);
    g_dropped.add(stale);
  }
  const std::scoped_lock lock(reg.trace_mu);
  reg.env_probed = true;  // an explicit open overrides the environment
  return open_trace_sink_locked(reg, options);
}

void flush_trace_sink() {
  publish_thread_buffer();
  if (const std::shared_ptr<TraceSink> sink = sink_ref()) {
    sink->flush_and_wait();
  }
}

void close_trace_sink() {
  Registry& reg = registry();
  std::shared_ptr<TraceSink> sink;
  {
    const std::scoped_lock lock(reg.trace_mu);
    sink = std::move(reg.sink);
    reg.sink.reset();
    reg.env_probed = true;  // closed stays closed; no lazy re-open
    g_sink_mode.store(kSinkNone, std::memory_order_release);
  }
  if (sink != nullptr) sink->shutdown();
}

bool trace_truncated() {
  return g_dropped.value() > 0 || g_open_failed.value() > 0;
}

void flush_thread() {
  publish_thread_buffer();
  thread_sink().fold(/*unregister=*/false);
}

Snapshot snapshot() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  Snapshot snap;
  snap.counters.reserve(reg.counter_names.size());
  for (std::size_t i = 0; i < reg.counter_names.size(); ++i) {
    std::uint64_t total = i < reg.folded_counters.size()
                              ? reg.folded_counters[i]
                              : 0;
    for (const ThreadSink* sink : reg.live_sinks) {
      total += sink->slots[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(reg.counter_names[i], total);
  }
  snap.histograms.reserve(reg.hist_names.size());
  for (std::size_t i = 0; i < reg.hist_names.size(); ++i) {
    snap.histograms.emplace_back(reg.hist_names[i], summarize(reg.hists[i]));
  }
  snap.attributes = reg.attributes;
  return snap;
}

void reset_values() {
  Registry& reg = registry();
  const std::scoped_lock lock(reg.mu);
  std::fill(reg.folded_counters.begin(), reg.folded_counters.end(), 0);
  for (ThreadSink* sink : reg.live_sinks) {
    for (std::atomic<std::uint64_t>& slot : sink->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
  for (HistData& h : reg.hists) h = HistData{};
  reg.attributes.clear();
}

}  // namespace ccmx::obs

#endif  // CCMX_OBS_DISABLED
