#include "obs/profile_reader.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/json.hpp"
#include "obs/schemas.hpp"
#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

double num_or(const json::Value& doc, const char* key, double fallback) {
  const json::Value* v = doc.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::uint64_t u64_or(const json::Value& doc, const char* key,
                     std::uint64_t fallback) {
  const json::Value* v = doc.find(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return fallback;
  return static_cast<std::uint64_t>(v->number);
}

std::string str_or(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  return v != nullptr && v->is_string() ? v->string : std::string();
}

}  // namespace

ProfileData load_profile(const std::string& path) {
  ProfileData data;
  data.path = path;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    data.problems.push_back(path + ": cannot open");
    return data;
  }
  bool saw_meta = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const util::contract_error&) {
      // A torn final line is the signature of a killed process; any
      // other unparseable line is equally just skipped and counted.
      ++data.skipped;
      continue;
    }
    if (!doc.is_object()) {
      ++data.skipped;
      continue;
    }
    const std::string ev = str_or(doc, "ev");
    if (ev == "meta") {
      const std::string schema = str_or(doc, "schema");
      if (schema != kProfileSchema) {
        data.problems.push_back(path + ": schema is \"" + schema +
                                "\", expected \"" +
                                std::string(kProfileSchema) + "\"");
        return data;
      }
      saw_meta = true;
      data.hz = util::narrow_cast<unsigned>(u64_or(doc, "hz", 0));
      data.mechanism = str_or(doc, "mechanism");
      data.start_us = static_cast<std::int64_t>(num_or(doc, "start_us", 0));
    } else if (ev == "frame") {
      ProfileFrame frame;
      frame.id = u64_or(doc, "id", 0);
      frame.pc = u64_or(doc, "pc", 0);
      frame.sym = str_or(doc, "sym");
      frame.module = str_or(doc, "module");
      frame.off = u64_or(doc, "off", 0);
      const json::Value* symbolized = doc.find("symbolized");
      frame.symbolized = symbolized != nullptr && symbolized->is_bool() &&
                         symbolized->boolean;
      data.frame_index[frame.id] = data.frames.size();
      data.frames.push_back(std::move(frame));
    } else if (ev == "sample") {
      ProfileSample sample;
      sample.tid = util::narrow_cast<std::uint32_t>(u64_or(doc, "tid", 0));
      sample.span = u64_or(doc, "span", 0);
      sample.t_us = static_cast<std::int64_t>(num_or(doc, "t_us", 0));
      if (const json::Value* stack = doc.find("stack");
          stack != nullptr && stack->is_array()) {
        for (const json::Value& f : stack->array) {
          if (f.is_number() && f.number >= 0) {
            sample.stack.push_back(static_cast<std::uint64_t>(f.number));
          }
        }
      }
      data.samples.push_back(std::move(sample));
    } else if (ev == "ledger") {
      data.has_ledger = true;
      data.ledger.captured = u64_or(doc, "captured", 0);
      data.ledger.written = u64_or(doc, "written", 0);
      data.ledger.dropped = u64_or(doc, "dropped", 0);
      data.ledger.truncated = u64_or(doc, "truncated", 0);
      data.ledger.threads = u64_or(doc, "threads", 0);
    } else {
      ++data.skipped;
    }
  }
  if (!saw_meta) {
    data.problems.push_back(path + ": no ccmx.profile meta row");
  }
  if (!data.has_ledger && saw_meta) {
    data.problems.push_back(
        path + ": no ledger row (profiler_stop() never ran?)");
  }
  return data;
}

std::vector<ProfileHotspot> profile_hotspots(const ProfileData& data) {
  std::map<std::string, ProfileHotspot> by_sym;
  for (const ProfileSample& sample : data.samples) {
    std::set<std::string> seen;
    for (std::size_t i = 0; i < sample.stack.size(); ++i) {
      const ProfileFrame* frame = data.frame(sample.stack[i]);
      if (frame == nullptr) continue;
      ProfileHotspot& spot = by_sym[frame->sym];
      spot.sym = frame->sym;
      if (i == 0) ++spot.self;
      if (seen.insert(frame->sym).second) ++spot.total;
    }
  }
  std::vector<ProfileHotspot> out;
  out.reserve(by_sym.size());
  for (auto& [sym, spot] : by_sym) out.push_back(std::move(spot));
  std::sort(out.begin(), out.end(),
            [](const ProfileHotspot& a, const ProfileHotspot& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.sym < b.sym;
            });
  return out;
}

std::map<std::string, std::uint64_t> collapsed_stacks(
    const ProfileData& data) {
  std::map<std::string, std::uint64_t> folded;
  for (const ProfileSample& sample : data.samples) {
    if (sample.stack.empty()) continue;
    std::string key;
    // Stacks are stored leaf-first; folded output is root-first.
    for (std::size_t i = sample.stack.size(); i-- > 0;) {
      const ProfileFrame* frame = data.frame(sample.stack[i]);
      if (!key.empty()) key += ';';
      key += frame != nullptr ? frame->sym : std::string("?");
    }
    ++folded[key];
  }
  return folded;
}

double symbolized_sample_fraction(const ProfileData& data) {
  if (data.samples.empty()) return 0.0;
  std::uint64_t attributed = 0;
  for (const ProfileSample& sample : data.samples) {
    for (const std::uint64_t id : sample.stack) {
      const ProfileFrame* frame = data.frame(id);
      if (frame != nullptr && frame->symbolized) {
        ++attributed;
        break;
      }
    }
  }
  return static_cast<double>(attributed) /
         static_cast<double>(data.samples.size());
}

std::map<std::uint64_t, std::uint64_t> samples_by_span(
    const ProfileData& data) {
  std::map<std::uint64_t, std::uint64_t> by_span;
  for (const ProfileSample& sample : data.samples) ++by_span[sample.span];
  return by_span;
}

}  // namespace ccmx::obs
