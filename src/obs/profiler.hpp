// In-process sampling CPU profiler with signal-safe stack capture.
//
// Why: hardware counters (obs/hwcounters.hpp) say *how much* work a run
// did and the span forest says how long each annotated region took, but
// neither can point at an unannotated BigInt inner loop or a pool
// scheduling hotspot.  A statistical profiler closes that gap: a POSIX
// interval timer delivers SIGPROF on the running thread, an
// async-signal-safe handler walks the frame-pointer chain and records
// the program-counter stack plus the enclosing span id into a per-thread
// lock-free ring, and a background drainer (same std::jthread shape as
// the trace writer) symbolizes the addresses offline — /proc/self/maps
// snapshot + dladdr, never in signal context — and appends
// ccmx.profile/1 JSONL rows.
//
// Sampling mechanism: one CLOCK_THREAD_CPUTIME_ID timer per registered
// thread (timer_create + SIGEV_THREAD_ID), so each thread is sampled in
// proportion to the CPU it actually burns and idle threads are silent.
// Where per-thread timers are unavailable the profiler falls back to a
// process-wide setitimer(ITIMER_PROF), which the kernel delivers to
// whichever thread is running — coarser, still statistically sound.
//
// Signal-safety invariants (enforced by ccmx_lint rule R7 on the
// `// ccmx-lint: signal-context` regions in profiler.cpp): the handler
// touches only pre-allocated memory and relaxed/acq-rel atomics — no
// allocation, no locks, no stdio, no std::string.  Everything that
// needs any of those (symbolization, JSON rendering, file IO) runs on
// the drainer thread.
//
// Conservation ledger, mirroring the trace pipeline's: every handler
// invocation on an armed thread increments `captured`; the sample is
// either written to the file (`written`) or dropped because the ring
// was full (`dropped`), so captured == written + dropped at stop().
// `truncated` counts frames cut at the per-sample depth cap (informational;
// those samples still count as written).
//
// Graceful degradation is a first-class mode, per the hwcounters
// convention: no frame pointers (start() self-checks a known call
// chain), SIGPROF already owned by someone else, no usable timer API,
// unopenable output file, and CCMX_OBS=OFF builds all yield
// profiler_start()==false with a human-readable reason from
// profiler_unavailable_reason() — consumers render the reason, never
// fake zeros.
#pragma once

#include <cstdint>
#include <string>

#include "obs/obs.hpp"

namespace ccmx::obs {

/// Explicit profiler configuration (CLIs and tests; normal runs
/// configure through CCMX_PROF_HZ / CCMX_PROF_FILE instead).
struct ProfilerOptions {
  /// JSONL output path (ccmx.profile/1), opened for truncation.
  std::string path;
  /// Samples per second of *CPU time* per thread; clamped to [1, 10000].
  unsigned hz = 97;
  /// Per-thread ring capacity in samples (test seam: a tiny ring plus a
  /// long drain interval forces overflow so the ledger path is testable).
  std::uint32_t ring_capacity = 512;
  /// Milliseconds between drainer sweeps; clamped to [1, 10000].
  std::int64_t drain_interval_ms = 100;
};

/// Final (or in-flight) conservation ledger.  captured == written +
/// dropped once the profiler has stopped and the rings are drained.
struct ProfilerLedger {
  std::uint64_t captured = 0;  ///< handler invocations on armed threads
  std::uint64_t written = 0;   ///< sample rows appended to the file
  std::uint64_t dropped = 0;   ///< samples lost to ring overflow
  std::uint64_t truncated = 0; ///< samples whose stack hit the depth cap
  std::uint64_t threads = 0;   ///< threads that were armed for sampling
  /// True when per-thread CLOCK_THREAD_CPUTIME_ID timers drove the
  /// sampling; false when the setitimer(ITIMER_PROF) fallback did.
  bool thread_timers = false;
};

#ifndef CCMX_OBS_DISABLED

/// Starts sampling every registered thread (and the calling thread) at
/// options.hz, writing ccmx.profile/1 JSONL to options.path.  False —
/// with the reason latched for profiler_unavailable_reason() and a
/// one-line stderr diagnostic — when the profiler is already running,
/// the file cannot be opened, SIGPROF is already owned, the
/// frame-pointer self-check fails, or no timer API works.
bool profiler_start(const ProfilerOptions& options);

/// Reads CCMX_PROF_FILE (+ CCMX_PROF_HZ, default 97 — a prime, so the
/// sampling clock cannot alias a periodic workload); false without
/// starting when neither variable is set.  CCMX_PROF_HZ alone profiles
/// into ./profile.jsonl.
bool profiler_start_from_env();

/// Disarms the timers, restores the previous SIGPROF disposition,
/// drains every ring, appends the ledger row, and closes the file.
/// Idempotent: a second stop() returns the same final ledger.  Also
/// folds the ledger into the obs.prof.* counters so run reports carry
/// it.
ProfilerLedger profiler_stop();

[[nodiscard]] bool profiler_running() noexcept;

/// Human-readable reason the last profiler_start() refused ("" after a
/// successful start): "SIGPROF handler already installed", "frame-pointer
/// walk found no caller (build with CCMX_FRAME_POINTERS=ON)", ...
[[nodiscard]] std::string profiler_unavailable_reason();

/// Registers the calling thread for sampling: records its stack bounds
/// and CPU clock, and — when the profiler is already running — arms its
/// timer immediately.  Threads that never register are simply not
/// sampled under per-thread timers (the worker pool registers every
/// worker; the main thread is registered by profiler_start()).  Cheap
/// and idempotent, safe to call when the profiler is off.
void profiler_register_thread();

/// Current ledger without stopping (tests and progress displays).
[[nodiscard]] ProfilerLedger profiler_ledger();

#else  // CCMX_OBS_DISABLED: inline no-ops, like the rest of the layer.

inline bool profiler_start(const ProfilerOptions&) { return false; }
inline bool profiler_start_from_env() { return false; }
inline ProfilerLedger profiler_stop() { return {}; }
[[nodiscard]] inline bool profiler_running() noexcept { return false; }
[[nodiscard]] inline std::string profiler_unavailable_reason() {
  return "observability compiled out (CCMX_OBS=OFF)";
}
inline void profiler_register_thread() {}
[[nodiscard]] inline ProfilerLedger profiler_ledger() { return {}; }

#endif  // CCMX_OBS_DISABLED

}  // namespace ccmx::obs
