// Rate-limited stderr progress line for long enumeration sweeps.
//
// A ProgressMeter is constructed with a label and (optionally) a total
// item count; the sweep calls tick() per item.  Inactive meters (the
// default) cost one branch per tick.  Active meters (CCMX_PROGRESS=1, or
// tracing enabled via CCMX_TRACE) redraw a single '\r' stderr line at
// most every CCMX_PROGRESS_MS milliseconds (default 500) with count,
// percentage, rate, and an ETA when the total is known.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ccmx::obs {

class ProgressMeter {
 public:
  /// total == 0 means "unknown" (no percentage / ETA).
  explicit ProgressMeter(std::string label, std::uint64_t total = 0);

  /// Finishes the line (newline) if anything was drawn.
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Thread-safe (relaxed atomics): concurrent sweep workers may tick the
  /// same meter.  Batch ticks (delta = the chunk's item count) amortize the
  /// call overhead and always consult the redraw clock; per-item ticks only
  /// check it every 1024 calls.
  void tick(std::uint64_t delta = 1) noexcept;

  /// Draws the final state and terminates the line; idempotent.
  void finish() noexcept;

  [[nodiscard]] std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  void draw(bool final_line) noexcept;

  std::string label_;
  std::uint64_t total_;
  bool active_ = false;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::int64_t> next_draw_us_{0};
  std::int64_t start_us_ = 0;
  std::int64_t interval_us_ = 500000;
  std::atomic<bool> drew_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace ccmx::obs
