#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw util::contract_error("trace line " + std::to_string(line_no) + ": " +
                             why);
}

std::uint64_t uint_field(const json::Value& obj, std::string_view key,
                         std::size_t line_no) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(line_no, "send event missing numeric \"" + std::string(key) + '"');
  }
  if (v->number < 0.0 || v->number != std::floor(v->number)) {
    fail(line_no, "field \"" + std::string(key) +
                      "\" is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

std::uint64_t ChannelTrace::total_rounds() const noexcept {
  std::uint64_t total = 0;
  for (const ChannelStats& ch : channels) total += ch.rounds.size();
  return total;
}

ChannelTrace parse_channel_trace(std::string_view text) {
  ChannelTrace trace;
  std::map<std::uint64_t, std::size_t> channel_index;  // id -> channels[i]

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ++line_no;
    if (eol == std::string_view::npos) {
      fail(line_no, "truncated trace: final line is not newline-terminated");
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    json::Value obj;
    try {
      obj = json::parse(line);
    } catch (const util::contract_error& e) {
      fail(line_no, std::string("malformed JSON: ") + e.what());
    }
    if (!obj.is_object()) fail(line_no, "event is not a JSON object");
    const json::Value* ev = obj.find("ev");
    if (ev == nullptr || !ev->is_string()) {
      fail(line_no, "event missing string \"ev\"");
    }
    if (ev->string != "send") {
      // Spans and future event kinds are valid JSONL but not channel
      // traffic; count and move on.
      ++trace.other_events;
      continue;
    }

    SendEvent send;
    // "ch" was added after PR 1; traces written before it carry no
    // channel id and all fold into channel 0.
    if (obj.find("ch") != nullptr) {
      send.channel = uint_field(obj, "ch", line_no);
    }
    const std::uint64_t from = uint_field(obj, "from", line_no);
    if (from > 1) fail(line_no, "agent out of range (must be 0 or 1)");
    send.from = util::narrow_cast<unsigned>(from);
    send.bits = uint_field(obj, "bits", line_no);
    send.round = uint_field(obj, "round", line_no);
    send.msg = uint_field(obj, "msg", line_no);
    const json::Value* t = obj.find("t_us");
    if (t == nullptr || !t->is_number()) {
      fail(line_no, "send event missing numeric \"t_us\"");
    }
    send.t_us = static_cast<std::int64_t>(t->number);

    const auto [it, fresh] =
        channel_index.try_emplace(send.channel, trace.channels.size());
    if (fresh) {
      trace.channels.emplace_back();
      trace.channels.back().id = send.channel;
    }
    ChannelStats& ch = trace.channels[it->second];

    // Per-channel message numbers are assigned 1, 2, 3, ... by the
    // writer; a gap means lines were lost.
    if (send.msg != ch.sends.size() + 1) {
      fail(line_no, "message sequence gap on channel " +
                        std::to_string(send.channel) + ": expected msg " +
                        std::to_string(ch.sends.size() + 1) + ", got " +
                        std::to_string(send.msg));
    }
    // Reconstruct the round from speaker alternation and cross-check the
    // writer's own round number.
    const bool new_round =
        ch.rounds.empty() || ch.rounds.back().speaker != send.from;
    const std::uint64_t expect_round =
        ch.rounds.size() + (new_round ? 1 : 0);
    if (send.round != expect_round) {
      fail(line_no, "round number mismatch on channel " +
                        std::to_string(send.channel) + ": recorded " +
                        std::to_string(send.round) + ", reconstructed " +
                        std::to_string(expect_round));
    }
    if (new_round) {
      RoundStats round;
      round.round = expect_round;
      round.speaker = send.from;
      ch.rounds.push_back(round);
    }
    ch.rounds.back().bits += send.bits;
    ch.rounds.back().messages += 1;
    ch.agents[send.from].bits += send.bits;
    ch.agents[send.from].messages += 1;
    trace.agents[send.from].bits += send.bits;
    trace.agents[send.from].messages += 1;
    ++trace.send_events;
    ch.sends.push_back(send);
  }
  return trace;
}

ChannelTrace read_channel_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CCMX_REQUIRE(in.is_open(), "cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_channel_trace(buffer.str());
}

std::vector<std::string> check_trace_against_report(
    const ChannelTrace& trace, const json::Value& report_doc) {
  std::vector<std::string> mismatches;
  const json::Value* counters = report_doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    mismatches.emplace_back("report has no counters object");
    return mismatches;
  }
  const auto counter = [&](std::string_view name) -> double {
    const json::Value* v = counters->find(name);
    return v != nullptr && v->is_number() ? v->number : -1.0;
  };
  const auto check = [&](std::string_view name, std::uint64_t reconstructed) {
    const double reported = counter(name);
    if (reported < 0.0) {
      mismatches.push_back("report lacks counter \"" + std::string(name) +
                           "\" (untraced run?)");
      return;
    }
    if (reported != static_cast<double>(reconstructed)) {
      std::ostringstream os;
      os << name << ": report says " << reported << ", trace reconstructs "
         << reconstructed;
      mismatches.push_back(os.str());
    }
  };
  check("comm.bits.agent0", trace.agents[0].bits);
  check("comm.bits.agent1", trace.agents[1].bits);
  check("comm.messages", trace.agents[0].messages + trace.agents[1].messages);
  check("comm.rounds", trace.total_rounds());

  // Per-round bit conservation: the channel layer keeps dedicated
  // counters for rounds 1..8 plus an overflow bucket (see channel.cpp);
  // reconstruct the same partition from the trace and compare.  A report
  // written before these counters existed lacks them entirely — only
  // complain when the trace actually carries bits for that bucket.
  constexpr std::uint64_t kRoundCounters = 8;
  std::uint64_t by_round[kRoundCounters] = {};
  std::uint64_t overflow = 0;
  for (const ChannelStats& ch : trace.channels) {
    for (const RoundStats& r : ch.rounds) {
      if (r.round >= 1 && r.round <= kRoundCounters) {
        by_round[r.round - 1] += r.bits;
      } else {
        overflow += r.bits;
      }
    }
  }
  const auto check_round = [&](std::string_view name,
                               std::uint64_t reconstructed) {
    const double reported = counter(name);
    if (reported < 0.0) {
      if (reconstructed > 0) {
        mismatches.push_back("report lacks counter \"" + std::string(name) +
                             "\" but the trace carries " +
                             std::to_string(reconstructed) +
                             " bits in that round");
      }
      return;
    }
    if (reported != static_cast<double>(reconstructed)) {
      std::ostringstream os;
      os << name << ": report says " << reported << ", trace reconstructs "
         << reconstructed;
      mismatches.push_back(os.str());
    }
  };
  for (std::uint64_t i = 0; i < kRoundCounters; ++i) {
    check_round("comm.bits.round" + std::to_string(i + 1), by_round[i]);
  }
  check_round("comm.bits.round_overflow", overflow);
  return mismatches;
}

PowerLawFit fit_power_law(const std::vector<std::pair<double, double>>& xy) {
  CCMX_REQUIRE(xy.size() >= 2, "power-law fit needs at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& [x, y] : xy) {
    CCMX_REQUIRE(x > 0.0 && y > 0.0,
                 "power-law fit needs strictly positive samples");
    const double lx = std::log2(x);
    const double ly = std::log2(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double n = static_cast<double>(xy.size());
  const double var_x = sxx - sx * sx / n;
  CCMX_REQUIRE(var_x > 1e-12, "power-law fit needs at least two distinct x");
  const double cov = sxy - sx * sy / n;
  const double var_y = syy - sy * sy / n;

  PowerLawFit fit;
  fit.points = xy.size();
  fit.slope = cov / var_x;
  fit.log2_intercept = (sy - fit.slope * sx) / n;
  fit.r2 = var_y <= 1e-12 ? 1.0 : (cov * cov) / (var_x * var_y);
  return fit;
}

}  // namespace ccmx::obs
