#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/schemas.hpp"
#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw util::contract_error("trace line " + std::to_string(line_no) + ": " +
                             why);
}

std::uint64_t uint_field(const json::Value& obj, std::string_view key,
                         std::size_t line_no,
                         std::string_view event_kind = "send") {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(line_no, std::string(event_kind) + " event missing numeric \"" +
                      std::string(key) + '"');
  }
  if (v->number < 0.0 || v->number != std::floor(v->number)) {
    fail(line_no, "field \"" + std::string(key) +
                      "\" is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->number);
}

std::int64_t int_field(const json::Value& obj, std::string_view key,
                       std::size_t line_no, std::string_view event_kind) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(line_no, std::string(event_kind) + " event missing numeric \"" +
                      std::string(key) + '"');
  }
  return static_cast<std::int64_t>(v->number);
}

/// Stringifies a span "args" member the way the dashboard and Chrome
/// export want to display it (integers without a trailing ".0").
std::string stringify_arg(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kString:
      return v.string;
    case json::Value::Kind::kBool:
      return v.boolean ? "true" : "false";
    case json::Value::Kind::kNumber: {
      if (v.number == std::floor(v.number) &&
          std::abs(v.number) < 9.0e15) {
        return std::to_string(static_cast<std::int64_t>(v.number));
      }
      std::ostringstream os;
      os << v.number;
      return os.str();
    }
    default:
      return "<non-scalar>";
  }
}

/// Parses one {"ev":"span",...} line.  Events carrying an "id" use the
/// span-tree format and are validated strictly; events without one are
/// the legacy flat format (name/t_us/dur_us only) and parse leniently so
/// pre-span-tree traces stay readable.
SpanEvent parse_span_event(const json::Value& obj, std::size_t line_no) {
  SpanEvent span;
  const json::Value* name = obj.find("name");
  if (name == nullptr || !name->is_string()) {
    fail(line_no, "span event missing string \"name\"");
  }
  span.name = name->string;
  span.t_us = int_field(obj, "t_us", line_no, "span");
  span.dur_us = int_field(obj, "dur_us", line_no, "span");
  if (span.dur_us < 0) fail(line_no, "span event has negative \"dur_us\"");
  if (obj.find("id") == nullptr) return span;  // legacy flat span
  span.id = uint_field(obj, "id", line_no, "span");
  if (span.id == 0) fail(line_no, "span event has id 0 (reserved)");
  span.parent = uint_field(obj, "parent", line_no, "span");
  span.tid = uint_field(obj, "tid", line_no, "span");
  if (const json::Value* args = obj.find("args")) {
    if (!args->is_object()) fail(line_no, "span \"args\" is not an object");
    for (const auto& [key, value] : args->object) {
      span.args.emplace_back(key, stringify_arg(value));
    }
  }
  return span;
}

}  // namespace

std::uint64_t ChannelTrace::total_rounds() const noexcept {
  std::uint64_t total = 0;
  for (const ChannelStats& ch : channels) total += ch.rounds.size();
  return total;
}

ChannelTrace parse_channel_trace(std::string_view text) {
  ChannelTrace trace;
  std::map<std::uint64_t, std::size_t> channel_index;  // id -> channels[i]

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ++line_no;
    if (eol == std::string_view::npos) {
      fail(line_no, "truncated trace: final line is not newline-terminated");
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    json::Value obj;
    try {
      obj = json::parse(line);
    } catch (const util::contract_error& e) {
      fail(line_no, std::string("malformed JSON: ") + e.what());
    }
    if (!obj.is_object()) fail(line_no, "event is not a JSON object");
    const json::Value* ev = obj.find("ev");
    if (ev == nullptr || !ev->is_string()) {
      fail(line_no, "event missing string \"ev\"");
    }
    if (ev->string == "span") {
      trace.spans.push_back(parse_span_event(obj, line_no));
      ++trace.span_events;
      continue;
    }
    if (ev->string != "send") {
      // Future event kinds are valid JSONL but not modeled; count and
      // move on.
      ++trace.other_events;
      continue;
    }

    SendEvent send;
    // "ch" was added after PR 1; traces written before it carry no
    // channel id and all fold into channel 0.
    if (obj.find("ch") != nullptr) {
      send.channel = uint_field(obj, "ch", line_no);
    }
    const std::uint64_t from = uint_field(obj, "from", line_no);
    if (from > 1) fail(line_no, "agent out of range (must be 0 or 1)");
    send.from = util::narrow_cast<unsigned>(from);
    send.bits = uint_field(obj, "bits", line_no);
    send.round = uint_field(obj, "round", line_no);
    send.msg = uint_field(obj, "msg", line_no);
    // "span"/"tid" joined the send format with the span-tree work; old
    // traces simply lack them.
    if (obj.find("span") != nullptr) {
      send.span = uint_field(obj, "span", line_no);
    }
    if (obj.find("tid") != nullptr) {
      send.tid = uint_field(obj, "tid", line_no);
    }
    const json::Value* t = obj.find("t_us");
    if (t == nullptr || !t->is_number()) {
      fail(line_no, "send event missing numeric \"t_us\"");
    }
    send.t_us = static_cast<std::int64_t>(t->number);

    const auto [it, fresh] =
        channel_index.try_emplace(send.channel, trace.channels.size());
    if (fresh) {
      trace.channels.emplace_back();
      trace.channels.back().id = send.channel;
    }
    ChannelStats& ch = trace.channels[it->second];

    // Per-channel message numbers are assigned 1, 2, 3, ... by the
    // writer; a gap means lines were lost.
    if (send.msg != ch.sends.size() + 1) {
      fail(line_no, "message sequence gap on channel " +
                        std::to_string(send.channel) + ": expected msg " +
                        std::to_string(ch.sends.size() + 1) + ", got " +
                        std::to_string(send.msg));
    }
    // Reconstruct the round from speaker alternation and cross-check the
    // writer's own round number.
    const bool new_round =
        ch.rounds.empty() || ch.rounds.back().speaker != send.from;
    const std::uint64_t expect_round =
        ch.rounds.size() + (new_round ? 1 : 0);
    if (send.round != expect_round) {
      fail(line_no, "round number mismatch on channel " +
                        std::to_string(send.channel) + ": recorded " +
                        std::to_string(send.round) + ", reconstructed " +
                        std::to_string(expect_round));
    }
    if (new_round) {
      RoundStats round;
      round.round = expect_round;
      round.speaker = send.from;
      ch.rounds.push_back(round);
    }
    ch.rounds.back().bits += send.bits;
    ch.rounds.back().messages += 1;
    ch.agents[send.from].bits += send.bits;
    ch.agents[send.from].messages += 1;
    trace.agents[send.from].bits += send.bits;
    trace.agents[send.from].messages += 1;
    ++trace.send_events;
    ch.sends.push_back(send);
  }
  return trace;
}

ChannelTrace read_channel_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CCMX_REQUIRE(in.is_open(), "cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_channel_trace(buffer.str());
}

std::vector<std::string> check_trace_against_report(
    const ChannelTrace& trace, const json::Value& report_doc) {
  std::vector<std::string> mismatches;
  const json::Value* counters = report_doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    mismatches.emplace_back("report has no counters object");
    return mismatches;
  }
  const auto counter = [&](std::string_view name) -> double {
    const json::Value* v = counters->find(name);
    return v != nullptr && v->is_number() ? v->number : -1.0;
  };
  const auto check = [&](std::string_view name, std::uint64_t reconstructed) {
    const double reported = counter(name);
    if (reported < 0.0) {
      mismatches.push_back("report lacks counter \"" + std::string(name) +
                           "\" (untraced run?)");
      return;
    }
    if (reported != static_cast<double>(reconstructed)) {
      std::ostringstream os;
      os << name << ": report says " << reported << ", trace reconstructs "
         << reconstructed;
      mismatches.push_back(os.str());
    }
  };
  check("comm.bits.agent0", trace.agents[0].bits);
  check("comm.bits.agent1", trace.agents[1].bits);
  check("comm.messages", trace.agents[0].messages + trace.agents[1].messages);
  check("comm.rounds", trace.total_rounds());

  // Per-round bit conservation: the channel layer keeps dedicated
  // counters for rounds 1..8 plus an overflow bucket (see channel.cpp);
  // reconstruct the same partition from the trace and compare.  A report
  // written before these counters existed lacks them entirely — only
  // complain when the trace actually carries bits for that bucket.
  constexpr std::uint64_t kRoundCounters = 8;
  std::uint64_t by_round[kRoundCounters] = {};
  std::uint64_t overflow = 0;
  for (const ChannelStats& ch : trace.channels) {
    for (const RoundStats& r : ch.rounds) {
      if (r.round >= 1 && r.round <= kRoundCounters) {
        by_round[r.round - 1] += r.bits;
      } else {
        overflow += r.bits;
      }
    }
  }
  const auto check_round = [&](std::string_view name,
                               std::uint64_t reconstructed) {
    const double reported = counter(name);
    if (reported < 0.0) {
      if (reconstructed > 0) {
        mismatches.push_back("report lacks counter \"" + std::string(name) +
                             "\" but the trace carries " +
                             std::to_string(reconstructed) +
                             " bits in that round");
      }
      return;
    }
    if (reported != static_cast<double>(reconstructed)) {
      std::ostringstream os;
      os << name << ": report says " << reported << ", trace reconstructs "
         << reconstructed;
      mismatches.push_back(os.str());
    }
  };
  for (std::uint64_t i = 0; i < kRoundCounters; ++i) {
    check_round("comm.bits.round" + std::to_string(i + 1), by_round[i]);
  }
  check_round("comm.bits.round_overflow", overflow);
  return mismatches;
}

SpanForest build_span_forest(const std::vector<SpanEvent>& spans) {
  SpanForest forest;
  for (const SpanEvent& span : spans) {
    if (span.id == 0) {
      ++forest.legacy_spans;
      continue;
    }
    forest.spans.push_back(span);
  }
  // Start-time order with id as the tie-break: ids are handed out at
  // construction, so a parent always sorts before its children even when
  // the clock cannot separate them.
  std::sort(forest.spans.begin(), forest.spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.t_us != b.t_us ? a.t_us < b.t_us : a.id < b.id;
            });

  std::map<std::uint64_t, std::size_t> node_of_id;  // span id -> node index
  std::map<std::uint64_t, std::size_t> thread_of_tid;
  const auto thread_index = [&](std::uint64_t tid) {
    const auto [it, fresh] =
        thread_of_tid.try_emplace(tid, forest.threads.size());
    if (fresh) {
      forest.threads.emplace_back();
      forest.threads.back().tid = tid;
    }
    return it->second;
  };

  for (std::size_t i = 0; i < forest.spans.size(); ++i) {
    const SpanEvent& span = forest.spans[i];
    SpanNode node;
    node.span = i;
    node.self_us = span.dur_us;

    const auto [it, fresh] = node_of_id.try_emplace(span.id, forest.nodes.size());
    if (!fresh) {
      forest.problems.push_back("span id " + std::to_string(span.id) + " (\"" +
                                span.name + "\") appears more than once");
      continue;
    }

    std::size_t parent_node = forest.nodes.size();  // sentinel: no parent
    if (span.parent != 0) {
      const auto parent_it = node_of_id.find(span.parent);
      if (parent_it == node_of_id.end()) {
        forest.problems.push_back(
            "span " + std::to_string(span.id) + " (\"" + span.name +
            "\") references missing parent " + std::to_string(span.parent) +
            "; reattached as a root");
      } else {
        const SpanNode& parent = forest.nodes[parent_it->second];
        const SpanEvent& parent_span = forest.spans[parent.span];
        if (parent_span.tid != span.tid) {
          forest.problems.push_back(
              "span " + std::to_string(span.id) + " (\"" + span.name +
              "\") on thread " + std::to_string(span.tid) +
              " claims parent " + std::to_string(span.parent) +
              " on thread " + std::to_string(parent_span.tid) +
              "; reattached as a root");
        } else {
          parent_node = parent_it->second;
          if (span.t_us < parent_span.t_us ||
              span.end_us() > parent_span.end_us()) {
            forest.problems.push_back(
                "unbalanced span " + std::to_string(span.id) + " (\"" +
                span.name + "\"): [" + std::to_string(span.t_us) + ", " +
                std::to_string(span.end_us()) +
                "] leaks outside its parent's [" +
                std::to_string(parent_span.t_us) + ", " +
                std::to_string(parent_span.end_us()) + "]");
          }
        }
      }
    }

    if (parent_node < forest.nodes.size()) {
      SpanNode& parent = forest.nodes[parent_node];
      node.depth = parent.depth + 1;
      parent.children.push_back(forest.nodes.size());
      parent.self_us -= span.dur_us;
    } else {
      ThreadSpans& thread = forest.threads[thread_index(span.tid)];
      if (thread.roots.empty()) {
        thread.first_us = span.t_us;
        thread.last_us = span.end_us();
      } else {
        thread.first_us = std::min(thread.first_us, span.t_us);
        thread.last_us = std::max(thread.last_us, span.end_us());
      }
      thread.roots.push_back(forest.nodes.size());
    }
    forest.nodes.push_back(std::move(node));
  }

  // Same-parent siblings (and same-thread roots) must not overlap: the
  // writer's spans are scoped, so overlap means interleaved lifetimes
  // (e.g. spans moved across scopes by hand).
  const auto check_siblings = [&](const std::vector<std::size_t>& siblings) {
    for (std::size_t i = 1; i < siblings.size(); ++i) {
      const SpanEvent& prev = forest.spans[forest.nodes[siblings[i - 1]].span];
      const SpanEvent& next = forest.spans[forest.nodes[siblings[i]].span];
      if (prev.end_us() > next.t_us) {
        forest.problems.push_back(
            "interleaved spans " + std::to_string(prev.id) + " (\"" +
            prev.name + "\", ends " + std::to_string(prev.end_us()) +
            ") and " + std::to_string(next.id) + " (\"" + next.name +
            "\", starts " + std::to_string(next.t_us) + ")");
      }
    }
  };
  for (const SpanNode& node : forest.nodes) check_siblings(node.children);
  for (const ThreadSpans& thread : forest.threads) {
    check_siblings(thread.roots);
  }

  std::sort(forest.threads.begin(), forest.threads.end(),
            [](const ThreadSpans& a, const ThreadSpans& b) {
              return a.tid < b.tid;
            });
  return forest;
}

std::string render_chrome_trace(const ChannelTrace& trace) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value(kChromeTraceSchema);
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Track naming: pid 1 carries the span trees (one track per writer
  // thread), pid 2 the channel traffic (one track per agent).
  constexpr std::int64_t kSpanPid = 1;
  constexpr std::int64_t kChannelPid = 2;
  const auto metadata = [&](std::int64_t pid, std::int64_t tid,
                            std::string_view what, std::string_view name) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(tid);
    w.key("name").value(what);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  };
  // Name only the tracks that will carry events, so an empty trace
  // renders an empty (but valid) traceEvents array.
  if (!trace.spans.empty()) {
    metadata(kSpanPid, 0, "process_name", "ccmx spans");
  }
  if (trace.send_events > 0) {
    metadata(kChannelPid, 0, "process_name", "ccmx channel");
    metadata(kChannelPid, 0, "thread_name", "agent0");
    metadata(kChannelPid, 1, "thread_name", "agent1");
  }
  std::vector<std::uint64_t> tids;
  for (const SpanEvent& span : trace.spans) tids.push_back(span.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint64_t tid : tids) {
    metadata(kSpanPid, static_cast<std::int64_t>(tid), "thread_name",
             tid == 0 ? std::string("legacy spans")
                      : "thread " + std::to_string(tid));
  }

  for (const SpanEvent& span : trace.spans) {
    w.begin_object();
    w.key("ph").value("X");
    w.key("pid").value(kSpanPid);
    w.key("tid").value(span.tid);
    w.key("name").value(span.name);
    w.key("cat").value("span");
    w.key("ts").value(span.t_us);
    w.key("dur").value(span.dur_us);
    w.key("args").begin_object();
    w.key("span_id").value(span.id);
    w.key("parent").value(span.parent);
    for (const auto& [key, value] : span.args) {
      w.key(key).value(value);
    }
    w.end_object();
    w.end_object();
  }

  // Each send becomes a 1us slice on the sender's track, a matching
  // slice on the receiver's, and a flow arrow binding the two — the
  // Perfetto rendering of "this message crossed the channel".
  std::uint64_t flow_id = 0;
  for (const ChannelStats& ch : trace.channels) {
    for (const SendEvent& send : ch.sends) {
      ++flow_id;
      const std::string label = "ch" + std::to_string(send.channel) + " r" +
                                std::to_string(send.round) + " " +
                                std::to_string(send.bits) + "b";
      const auto slice = [&](std::int64_t tid, std::string_view name) {
        w.begin_object();
        w.key("ph").value("X");
        w.key("pid").value(kChannelPid);
        w.key("tid").value(tid);
        w.key("name").value(name);
        w.key("cat").value("send");
        w.key("ts").value(send.t_us);
        w.key("dur").value(std::int64_t{1});
        w.key("args").begin_object();
        w.key("bits").value(send.bits);
        w.key("channel").value(send.channel);
        w.key("round").value(send.round);
        w.key("msg").value(send.msg);
        if (send.span != 0) w.key("span_id").value(send.span);
        w.end_object();
        w.end_object();
      };
      slice(send.from, label);
      slice(1 - static_cast<std::int64_t>(send.from), "recv " + label);
      const auto flow = [&](std::string_view ph, std::int64_t tid) {
        w.begin_object();
        w.key("ph").value(ph);
        w.key("pid").value(kChannelPid);
        w.key("tid").value(tid);
        w.key("name").value("msg");
        w.key("cat").value("send");
        w.key("id").value(flow_id);
        w.key("ts").value(send.t_us);
        if (ph == "f") w.key("bp").value("e");
        w.end_object();
      };
      flow("s", send.from);
      flow("f", 1 - static_cast<std::int64_t>(send.from));
    }
  }

  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

PowerLawFit fit_power_law(const std::vector<std::pair<double, double>>& xy) {
  CCMX_REQUIRE(xy.size() >= 2, "power-law fit needs at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& [x, y] : xy) {
    CCMX_REQUIRE(x > 0.0 && y > 0.0,
                 "power-law fit needs strictly positive samples");
    const double lx = std::log2(x);
    const double ly = std::log2(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double n = static_cast<double>(xy.size());
  const double var_x = sxx - sx * sx / n;
  CCMX_REQUIRE(var_x > 1e-12, "power-law fit needs at least two distinct x");
  const double cov = sxy - sx * sy / n;
  const double var_y = syy - sy * sy / n;

  PowerLawFit fit;
  fit.points = xy.size();
  fit.slope = cov / var_x;
  fit.log2_intercept = (sy - fit.slope * sx) / n;
  fit.r2 = var_y <= 1e-12 ? 1.0 : (cov * cov) / (var_x * var_y);
  return fit;
}

}  // namespace ccmx::obs
