#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/schemas.hpp"
#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw util::contract_error("trace line " + std::to_string(line_no) + ": " +
                             why);
}

std::uint64_t uint_field(const json::Value& obj, std::string_view key,
                         std::size_t line_no,
                         std::string_view event_kind = "send") {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(line_no, std::string(event_kind) + " event missing numeric \"" +
                      std::string(key) + '"');
  }
  if (v->number < 0.0 || v->number != std::floor(v->number)) {
    fail(line_no, "field \"" + std::string(key) +
                      "\" is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->number);
}

std::int64_t int_field(const json::Value& obj, std::string_view key,
                       std::size_t line_no, std::string_view event_kind) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(line_no, std::string(event_kind) + " event missing numeric \"" +
                      std::string(key) + '"');
  }
  return static_cast<std::int64_t>(v->number);
}

/// Stringifies a span "args" member the way the dashboard and Chrome
/// export want to display it (integers without a trailing ".0").
std::string stringify_arg(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kString:
      return v.string;
    case json::Value::Kind::kBool:
      return v.boolean ? "true" : "false";
    case json::Value::Kind::kNumber: {
      if (v.number == std::floor(v.number) &&
          std::abs(v.number) < 9.0e15) {
        return std::to_string(static_cast<std::int64_t>(v.number));
      }
      std::ostringstream os;
      os << v.number;
      return os.str();
    }
    default:
      return "<non-scalar>";
  }
}

/// Parses one {"ev":"span",...} line.  Events carrying an "id" use the
/// span-tree format and are validated strictly; events without one are
/// the legacy flat format (name/t_us/dur_us only) and parse leniently so
/// pre-span-tree traces stay readable.
SpanEvent parse_span_event(const json::Value& obj, std::size_t line_no) {
  SpanEvent span;
  const json::Value* name = obj.find("name");
  if (name == nullptr || !name->is_string()) {
    fail(line_no, "span event missing string \"name\"");
  }
  span.name = name->string;
  span.t_us = int_field(obj, "t_us", line_no, "span");
  span.dur_us = int_field(obj, "dur_us", line_no, "span");
  if (span.dur_us < 0) fail(line_no, "span event has negative \"dur_us\"");
  if (obj.find("id") == nullptr) return span;  // legacy flat span
  span.id = uint_field(obj, "id", line_no, "span");
  if (span.id == 0) fail(line_no, "span event has id 0 (reserved)");
  span.parent = uint_field(obj, "parent", line_no, "span");
  span.tid = uint_field(obj, "tid", line_no, "span");
  if (const json::Value* args = obj.find("args")) {
    if (!args->is_object()) fail(line_no, "span \"args\" is not an object");
    for (const auto& [key, value] : args->object) {
      span.args.emplace_back(key, stringify_arg(value));
    }
  }
  return span;
}

}  // namespace

std::uint64_t ChannelTrace::total_rounds() const noexcept {
  std::uint64_t total = 0;
  for (const ChannelStats& ch : channels) total += ch.rounds.size();
  return total;
}

TraceStream::TraceStream(TraceReadOptions options) : options_(options) {}

void TraceStream::feed(std::string_view chunk) {
  CCMX_REQUIRE(!finished_, "TraceStream::feed after finish");
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const std::size_t eol = chunk.find('\n', pos);
    if (eol == std::string_view::npos) {
      carry_.append(chunk.substr(pos));  // line continues in the next feed
      return;
    }
    ++line_no_;
    if (carry_.empty()) {
      parse_line(chunk.substr(pos, eol - pos));
    } else {
      carry_.append(chunk.substr(pos, eol - pos));
      parse_line(carry_);
      carry_.clear();
    }
    pos = eol + 1;
  }
}

void TraceStream::finish() {
  if (finished_) return;
  finished_ = true;
  if (carry_.empty()) return;
  // A line without its newline is the signature of a killed writer.
  if (!options_.tolerate_truncated_tail) {
    fail(line_no_ + 1,
         "truncated trace: final line is not newline-terminated");
  }
  stats_.truncated_tail = true;  // one tolerated truncation, line dropped
  carry_.clear();
}

void TraceStream::consume_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CCMX_REQUIRE(in.is_open(), "cannot open trace file: " + path);
  std::string chunk(std::size_t{256} * 1024, '\0');
  for (;;) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    feed(std::string_view(chunk.data(), got));
  }
  finish();
}

void TraceStream::parse_line(std::string_view line) {
  if (line.empty()) return;
  ++stats_.lines;
  json::Value obj;
  try {
    obj = json::parse(line);
  } catch (const util::contract_error& e) {
    fail(line_no_, std::string("malformed JSON: ") + e.what());
  }
  if (!obj.is_object()) fail(line_no_, "event is not a JSON object");
  const json::Value* ev = obj.find("ev");
  if (ev == nullptr || !ev->is_string()) {
    fail(line_no_, "event missing string \"ev\"");
  }
  if (ev->string == "span") {
    SpanEvent span = parse_span_event(obj, line_no_);
    if (on_span) on_span(span);
    ++trace_.span_events;
    if (options_.keep_spans) trace_.spans.push_back(std::move(span));
    return;
  }
  if (ev->string != "send") {
    // Future event kinds are valid JSONL but not modeled; count and
    // move on.
    ++trace_.other_events;
    return;
  }
  handle_send(obj);
}

void TraceStream::handle_send(const json::Value& obj) {
  const std::size_t line_no = line_no_;
  SendEvent send;
  // "ch" was added after PR 1; traces written before it carry no channel
  // id and all fold into channel 0.
  if (obj.find("ch") != nullptr) {
    send.channel = uint_field(obj, "ch", line_no);
  }
  const std::uint64_t from = uint_field(obj, "from", line_no);
  if (from > 1) fail(line_no, "agent out of range (must be 0 or 1)");
  send.from = util::narrow_cast<unsigned>(from);
  send.bits = uint_field(obj, "bits", line_no);
  send.round = uint_field(obj, "round", line_no);
  send.msg = uint_field(obj, "msg", line_no);
  // "span"/"tid" joined the send format with the span-tree work; old
  // traces simply lack them.
  if (obj.find("span") != nullptr) {
    send.span = uint_field(obj, "span", line_no);
  }
  if (obj.find("tid") != nullptr) {
    send.tid = uint_field(obj, "tid", line_no);
  }
  const json::Value* t = obj.find("t_us");
  if (t == nullptr || !t->is_number()) {
    fail(line_no, "send event missing numeric \"t_us\"");
  }
  send.t_us = static_cast<std::int64_t>(t->number);
  if (on_send) on_send(send);

  const auto [it, fresh] = channels_.try_emplace(send.channel);
  ChannelState& state = it->second;
  if (fresh) {
    state.index = trace_.channels.size();
    trace_.channels.emplace_back();
    trace_.channels.back().id = send.channel;
  }
  ChannelStats& ch = trace_.channels[state.index];

  // Per-channel message numbers are assigned 1, 2, 3, ... by the writer;
  // a gap means lines were lost.  Under tolerate_gaps a *forward* jump
  // is counted and parsing continues (drop backpressure only ever
  // removes lines); a backward number is corruption either way.
  if (send.msg != state.next_msg) {
    if (!options_.tolerate_gaps || send.msg < state.next_msg) {
      fail(line_no, "message sequence gap on channel " +
                        std::to_string(send.channel) + ": expected msg " +
                        std::to_string(state.next_msg) + ", got " +
                        std::to_string(send.msg));
    }
    ++stats_.gap_events;
    if (!state.gapped) {
      state.gapped = true;
      ++stats_.gapped_channels;
    }
  }
  state.next_msg = send.msg + 1;

  if (!state.gapped) {
    // Reconstruct the round from speaker alternation and cross-check the
    // writer's own round number.
    const bool new_round =
        ch.rounds.empty() || ch.rounds.back().speaker != send.from;
    const std::uint64_t expect_round =
        ch.rounds.size() + (new_round ? 1 : 0);
    if (send.round != expect_round) {
      fail(line_no, "round number mismatch on channel " +
                        std::to_string(send.channel) + ": recorded " +
                        std::to_string(send.round) + ", reconstructed " +
                        std::to_string(expect_round));
    }
    if (new_round) {
      RoundStats round;
      round.round = expect_round;
      round.speaker = send.from;
      ch.rounds.push_back(round);
    }
  } else {
    // With lines missing, speaker alternation is unreliable: trust the
    // recorded round numbers instead.  They must still be monotone with
    // a single speaker per round.
    const std::uint64_t last =
        ch.rounds.empty() ? 0 : ch.rounds.back().round;
    if (send.round == 0 || send.round < last) {
      fail(line_no, "round number went backwards on gapped channel " +
                        std::to_string(send.channel) + ": recorded " +
                        std::to_string(send.round) + " after " +
                        std::to_string(last));
    }
    if (send.round > last) {
      RoundStats round;
      round.round = send.round;
      round.speaker = send.from;
      ch.rounds.push_back(round);
    } else if (ch.rounds.back().speaker != send.from) {
      fail(line_no, "two speakers in round " + std::to_string(send.round) +
                        " on channel " + std::to_string(send.channel));
    }
  }
  ch.rounds.back().bits += send.bits;
  ch.rounds.back().messages += 1;
  ch.agents[send.from].bits += send.bits;
  ch.agents[send.from].messages += 1;
  trace_.agents[send.from].bits += send.bits;
  trace_.agents[send.from].messages += 1;
  ++trace_.send_events;
  if (options_.keep_sends) ch.sends.push_back(send);
}

ChannelTrace parse_channel_trace(std::string_view text) {
  TraceStream stream;
  stream.feed(text);
  stream.finish();
  return stream.take_trace();
}

ChannelTrace read_channel_trace_file(const std::string& path) {
  TraceStream stream;
  stream.consume_file(path);
  return stream.take_trace();
}

std::vector<std::string> check_trace_against_report(
    const ChannelTrace& trace, const json::Value& report_doc) {
  std::vector<std::string> mismatches;
  const json::Value* counters = report_doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    mismatches.emplace_back("report has no counters object");
    return mismatches;
  }
  const auto counter = [&](std::string_view name) -> double {
    const json::Value* v = counters->find(name);
    return v != nullptr && v->is_number() ? v->number : -1.0;
  };
  const auto check = [&](std::string_view name, std::uint64_t reconstructed) {
    const double reported = counter(name);
    if (reported < 0.0) {
      mismatches.push_back("report lacks counter \"" + std::string(name) +
                           "\" (untraced run?)");
      return;
    }
    if (reported != static_cast<double>(reconstructed)) {
      std::ostringstream os;
      os << name << ": report says " << reported << ", trace reconstructs "
         << reconstructed;
      mismatches.push_back(os.str());
    }
  };
  check("comm.bits.agent0", trace.agents[0].bits);
  check("comm.bits.agent1", trace.agents[1].bits);
  check("comm.messages", trace.agents[0].messages + trace.agents[1].messages);
  check("comm.rounds", trace.total_rounds());

  // Per-round bit conservation: the channel layer keeps dedicated
  // counters for rounds 1..8 plus an overflow bucket (see channel.cpp);
  // reconstruct the same partition from the trace and compare.  A report
  // written before these counters existed lacks them entirely — only
  // complain when the trace actually carries bits for that bucket.
  constexpr std::uint64_t kRoundCounters = 8;
  std::uint64_t by_round[kRoundCounters] = {};
  std::uint64_t overflow = 0;
  for (const ChannelStats& ch : trace.channels) {
    for (const RoundStats& r : ch.rounds) {
      if (r.round >= 1 && r.round <= kRoundCounters) {
        by_round[r.round - 1] += r.bits;
      } else {
        overflow += r.bits;
      }
    }
  }
  const auto check_round = [&](std::string_view name,
                               std::uint64_t reconstructed) {
    const double reported = counter(name);
    if (reported < 0.0) {
      if (reconstructed > 0) {
        mismatches.push_back("report lacks counter \"" + std::string(name) +
                             "\" but the trace carries " +
                             std::to_string(reconstructed) +
                             " bits in that round");
      }
      return;
    }
    if (reported != static_cast<double>(reconstructed)) {
      std::ostringstream os;
      os << name << ": report says " << reported << ", trace reconstructs "
         << reconstructed;
      mismatches.push_back(os.str());
    }
  };
  for (std::uint64_t i = 0; i < kRoundCounters; ++i) {
    check_round("comm.bits.round" + std::to_string(i + 1), by_round[i]);
  }
  check_round("comm.bits.round_overflow", overflow);

  // Event conservation for the async pipeline: every emitted event must
  // either reach the file or be accounted as a drop, so at a quiescent
  // point  lines-in-file + obs.trace.dropped >= obs.trace.emitted.  The
  // checks are one-sided because a parsed trace may legitimately hold
  // MORE events than one report's counters (append-mode files span
  // several runs, and counter resets do not truncate the file), and
  // they only fire when the report carries the pipeline's counters at
  // all (older reports predate them).
  const double emitted = counter("obs.trace.emitted");
  const double dropped = counter("obs.trace.dropped");
  if (emitted >= 0.0 && dropped >= 0.0) {
    if (dropped > emitted) {
      std::ostringstream os;
      os << "obs.trace.dropped (" << dropped << ") exceeds obs.trace.emitted ("
         << emitted << ')';
      mismatches.push_back(os.str());
    }
    const std::uint64_t total_events =
        trace.send_events + trace.span_events + trace.other_events;
    // total_events == 0 means the caller checked a hand-built subset (or
    // an empty trace) against a real report; stay quiet.
    if (total_events > 0 &&
        static_cast<double>(total_events) + dropped < emitted) {
      std::ostringstream os;
      os << "trace file lost events: " << total_events << " parsed + "
         << dropped << " dropped < " << emitted << " emitted";
      mismatches.push_back(os.str());
    }
    const double open_failed = counter("obs.trace.open_failed");
    const bool losses = dropped > 0.0 || open_failed > 0.0;
    const json::Value* trunc = report_doc.find("trace_truncated");
    if (trunc != nullptr && trunc->is_bool()) {
      if (trunc->boolean != losses) {
        std::ostringstream os;
        os << "trace_truncated flag is " << (trunc->boolean ? "true" : "false")
           << " but counters say " << dropped << " dropped / "
           << std::max(open_failed, 0.0) << " open failures";
        mismatches.push_back(os.str());
      }
    } else if (losses) {
      mismatches.emplace_back(
          "report lacks trace_truncated flag despite dropped events");
    }
  }
  return mismatches;
}

SpanForest build_span_forest(const std::vector<SpanEvent>& spans) {
  SpanForest forest;
  for (const SpanEvent& span : spans) {
    if (span.id == 0) {
      ++forest.legacy_spans;
      continue;
    }
    forest.spans.push_back(span);
  }
  // Start-time order with id as the tie-break: ids are handed out at
  // construction, so a parent always sorts before its children even when
  // the clock cannot separate them.
  std::sort(forest.spans.begin(), forest.spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.t_us != b.t_us ? a.t_us < b.t_us : a.id < b.id;
            });

  std::map<std::uint64_t, std::size_t> node_of_id;  // span id -> node index
  std::map<std::uint64_t, std::size_t> thread_of_tid;
  const auto thread_index = [&](std::uint64_t tid) {
    const auto [it, fresh] =
        thread_of_tid.try_emplace(tid, forest.threads.size());
    if (fresh) {
      forest.threads.emplace_back();
      forest.threads.back().tid = tid;
    }
    return it->second;
  };

  for (std::size_t i = 0; i < forest.spans.size(); ++i) {
    const SpanEvent& span = forest.spans[i];
    SpanNode node;
    node.span = i;
    node.self_us = span.dur_us;

    const auto [it, fresh] = node_of_id.try_emplace(span.id, forest.nodes.size());
    if (!fresh) {
      forest.problems.push_back("span id " + std::to_string(span.id) + " (\"" +
                                span.name + "\") appears more than once");
      continue;
    }

    std::size_t parent_node = forest.nodes.size();  // sentinel: no parent
    if (span.parent != 0) {
      const auto parent_it = node_of_id.find(span.parent);
      if (parent_it == node_of_id.end()) {
        forest.problems.push_back(
            "span " + std::to_string(span.id) + " (\"" + span.name +
            "\") references missing parent " + std::to_string(span.parent) +
            "; reattached as a root");
      } else {
        const SpanNode& parent = forest.nodes[parent_it->second];
        const SpanEvent& parent_span = forest.spans[parent.span];
        if (parent_span.tid != span.tid) {
          forest.problems.push_back(
              "span " + std::to_string(span.id) + " (\"" + span.name +
              "\") on thread " + std::to_string(span.tid) +
              " claims parent " + std::to_string(span.parent) +
              " on thread " + std::to_string(parent_span.tid) +
              "; reattached as a root");
        } else {
          parent_node = parent_it->second;
          if (span.t_us < parent_span.t_us ||
              span.end_us() > parent_span.end_us()) {
            forest.problems.push_back(
                "unbalanced span " + std::to_string(span.id) + " (\"" +
                span.name + "\"): [" + std::to_string(span.t_us) + ", " +
                std::to_string(span.end_us()) +
                "] leaks outside its parent's [" +
                std::to_string(parent_span.t_us) + ", " +
                std::to_string(parent_span.end_us()) + "]");
          }
        }
      }
    }

    if (parent_node < forest.nodes.size()) {
      SpanNode& parent = forest.nodes[parent_node];
      node.depth = parent.depth + 1;
      parent.children.push_back(forest.nodes.size());
      parent.self_us -= span.dur_us;
    } else {
      ThreadSpans& thread = forest.threads[thread_index(span.tid)];
      if (thread.roots.empty()) {
        thread.first_us = span.t_us;
        thread.last_us = span.end_us();
      } else {
        thread.first_us = std::min(thread.first_us, span.t_us);
        thread.last_us = std::max(thread.last_us, span.end_us());
      }
      thread.roots.push_back(forest.nodes.size());
    }
    forest.nodes.push_back(std::move(node));
  }

  // Same-parent siblings (and same-thread roots) must not overlap: the
  // writer's spans are scoped, so overlap means interleaved lifetimes
  // (e.g. spans moved across scopes by hand).
  const auto check_siblings = [&](const std::vector<std::size_t>& siblings) {
    for (std::size_t i = 1; i < siblings.size(); ++i) {
      const SpanEvent& prev = forest.spans[forest.nodes[siblings[i - 1]].span];
      const SpanEvent& next = forest.spans[forest.nodes[siblings[i]].span];
      if (prev.end_us() > next.t_us) {
        forest.problems.push_back(
            "interleaved spans " + std::to_string(prev.id) + " (\"" +
            prev.name + "\", ends " + std::to_string(prev.end_us()) +
            ") and " + std::to_string(next.id) + " (\"" + next.name +
            "\", starts " + std::to_string(next.t_us) + ")");
      }
    }
  };
  for (const SpanNode& node : forest.nodes) check_siblings(node.children);
  for (const ThreadSpans& thread : forest.threads) {
    check_siblings(thread.roots);
  }

  std::sort(forest.threads.begin(), forest.threads.end(),
            [](const ThreadSpans& a, const ThreadSpans& b) {
              return a.tid < b.tid;
            });
  return forest;
}

namespace {

// Track naming: pid 1 carries the span trees (one track per writer
// thread), pid 2 the channel traffic (one track per agent).
constexpr std::int64_t kSpanPid = 1;
constexpr std::int64_t kChannelPid = 2;

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(&os), w_(os) {
  w_.begin_object();
  w_.key("schema").value(kChromeTraceSchema);
  w_.key("displayTimeUnit").value("ms");
  w_.key("traceEvents").begin_array();
}

void ChromeTraceWriter::add_span(const SpanEvent& span) {
  span_tids_.push_back(span.tid);
  w_.begin_object();
  w_.key("ph").value("X");
  w_.key("pid").value(kSpanPid);
  w_.key("tid").value(span.tid);
  w_.key("name").value(span.name);
  w_.key("cat").value("span");
  w_.key("ts").value(span.t_us);
  w_.key("dur").value(span.dur_us);
  w_.key("args").begin_object();
  w_.key("span_id").value(span.id);
  w_.key("parent").value(span.parent);
  for (const auto& [key, value] : span.args) {
    w_.key(key).value(value);
  }
  w_.end_object();
  w_.end_object();
}

void ChromeTraceWriter::add_send(const SendEvent& send) {
  // Each send becomes a 1us slice on the sender's track, a matching
  // slice on the receiver's, and a flow arrow binding the two — the
  // Perfetto rendering of "this message crossed the channel".
  any_send_ = true;
  ++flow_id_;
  const std::string label = "ch" + std::to_string(send.channel) + " r" +
                            std::to_string(send.round) + " " +
                            std::to_string(send.bits) + "b";
  const auto slice = [&](std::int64_t tid, std::string_view name) {
    w_.begin_object();
    w_.key("ph").value("X");
    w_.key("pid").value(kChannelPid);
    w_.key("tid").value(tid);
    w_.key("name").value(name);
    w_.key("cat").value("send");
    w_.key("ts").value(send.t_us);
    w_.key("dur").value(std::int64_t{1});
    w_.key("args").begin_object();
    w_.key("bits").value(send.bits);
    w_.key("channel").value(send.channel);
    w_.key("round").value(send.round);
    w_.key("msg").value(send.msg);
    if (send.span != 0) w_.key("span_id").value(send.span);
    w_.end_object();
    w_.end_object();
  };
  slice(send.from, label);
  slice(1 - static_cast<std::int64_t>(send.from), "recv " + label);
  const auto flow = [&](std::string_view ph, std::int64_t tid) {
    w_.begin_object();
    w_.key("ph").value(ph);
    w_.key("pid").value(kChannelPid);
    w_.key("tid").value(tid);
    w_.key("name").value("msg");
    w_.key("cat").value("send");
    w_.key("id").value(flow_id_);
    w_.key("ts").value(send.t_us);
    if (ph == "f") w_.key("bp").value("e");
    w_.end_object();
  };
  flow("s", send.from);
  flow("f", 1 - static_cast<std::int64_t>(send.from));
}

void ChromeTraceWriter::finish() {
  CCMX_REQUIRE(!finished_, "ChromeTraceWriter::finish called twice");
  finished_ = true;
  const auto metadata = [&](std::int64_t pid, std::int64_t tid,
                            std::string_view what, std::string_view name) {
    w_.begin_object();
    w_.key("ph").value("M");
    w_.key("pid").value(pid);
    w_.key("tid").value(tid);
    w_.key("name").value(what);
    w_.key("args").begin_object().key("name").value(name).end_object();
    w_.end_object();
  };
  // Name only the tracks that carried events, so an empty trace renders
  // an empty (but valid) traceEvents array.
  if (!span_tids_.empty()) {
    metadata(kSpanPid, 0, "process_name", "ccmx spans");
  }
  if (any_send_) {
    metadata(kChannelPid, 0, "process_name", "ccmx channel");
    metadata(kChannelPid, 0, "thread_name", "agent0");
    metadata(kChannelPid, 1, "thread_name", "agent1");
  }
  std::sort(span_tids_.begin(), span_tids_.end());
  span_tids_.erase(std::unique(span_tids_.begin(), span_tids_.end()),
                   span_tids_.end());
  for (const std::uint64_t tid : span_tids_) {
    metadata(kSpanPid, static_cast<std::int64_t>(tid), "thread_name",
             tid == 0 ? std::string("legacy spans")
                      : "thread " + std::to_string(tid));
  }
  w_.end_array();
  w_.end_object();
  *os_ << '\n';
}

std::string render_chrome_trace(const ChannelTrace& trace) {
  std::ostringstream os;
  ChromeTraceWriter writer(os);
  for (const SpanEvent& span : trace.spans) writer.add_span(span);
  for (const ChannelStats& ch : trace.channels) {
    for (const SendEvent& send : ch.sends) writer.add_send(send);
  }
  writer.finish();
  return os.str();
}

PowerLawFit fit_power_law(const std::vector<std::pair<double, double>>& xy) {
  CCMX_REQUIRE(xy.size() >= 2, "power-law fit needs at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& [x, y] : xy) {
    CCMX_REQUIRE(x > 0.0 && y > 0.0,
                 "power-law fit needs strictly positive samples");
    const double lx = std::log2(x);
    const double ly = std::log2(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double n = static_cast<double>(xy.size());
  const double var_x = sxx - sx * sx / n;
  CCMX_REQUIRE(var_x > 1e-12, "power-law fit needs at least two distinct x");
  const double cov = sxy - sx * sy / n;
  const double var_y = syy - sy * sy / n;

  PowerLawFit fit;
  fit.points = xy.size();
  fit.slope = cov / var_x;
  fit.log2_intercept = (sy - fit.slope * sx) / n;
  fit.r2 = var_y <= 1e-12 ? 1.0 : (cov * cov) / (var_x * var_y);
  return fit;
}

namespace {

double ts_number(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

std::uint64_t ts_u64(const json::Value& obj, std::string_view key) {
  const double v = ts_number(obj, key);
  return v > 0.0 ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace

TimeseriesResult load_timeseries(const std::string& path) {
  TimeseriesResult result;
  result.path = path;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    result.problems.push_back(path + ": cannot open");
    return result;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const util::contract_error&) {
      // A torn final line is the signature of a killed sampler; any
      // other unparseable line is equally just skipped and counted.
      ++result.skipped;
      continue;
    }
    const json::Value* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->string != kTimeseriesSchema) {
      ++result.skipped;
      continue;
    }
    TimeseriesRow row;
    row.seq = ts_u64(doc, "seq");
    row.t_us = static_cast<std::int64_t>(ts_number(doc, "t_us"));
    row.dt_us = static_cast<std::int64_t>(ts_number(doc, "dt_us"));
    row.rss_bytes = static_cast<std::int64_t>(ts_number(doc, "rss_bytes"));
    row.utime_s = ts_number(doc, "utime_s");
    row.stime_s = ts_number(doc, "stime_s");
    row.minor_faults = ts_u64(doc, "minor_faults");
    row.major_faults = ts_u64(doc, "major_faults");
    if (const json::Value* counters = doc.find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->object) {
        if (value.is_number() && value.number > 0.0) {
          row.counters.emplace_back(
              name, static_cast<std::uint64_t>(value.number));
        }
      }
    }
    if (const json::Value* hw = doc.find("hw");
        hw != nullptr && hw->is_object()) {
      const json::Value* avail = hw->find("available");
      row.hw_available =
          avail != nullptr && avail->is_bool() && avail->boolean;
      if (row.hw_available) {
        row.instructions = ts_u64(*hw, "instructions");
        row.cycles = ts_u64(*hw, "cycles");
        row.ipc = ts_number(*hw, "ipc");
        row.cache_miss_rate = ts_number(*hw, "cache_miss_rate");
        row.task_clock_ns = ts_u64(*hw, "task_clock_ns");
      }
    }
    if (!result.rows.empty() && row.t_us < result.rows.back().t_us) {
      result.problems.push_back(
          path + ": rows out of order at seq " + std::to_string(row.seq));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace ccmx::obs
