// The single registry of machine-readable document schemas this repo
// emits.  Every JSON(L) artifact carries a "schema" field of the form
// "ccmx.<name>/<version>"; the string MUST be one of the constants below
// and MUST be referenced through them — ccmx_lint rule R3 ("schema")
// flags any other occurrence of a ccmx.<name>/<version> string literal
// in src/, tools/, or bench/, so a new emitter cannot invent an
// unregistered (or typo'd) schema id without failing the lint gate.
//
// Version bumps: adding a field is backward compatible and keeps the
// version; removing or re-typing a field bumps <version> and gets a new
// constant here (consumers match on the exact string).
#pragma once

#include <string_view>

namespace ccmx::obs {

/// Per-process run summary written by every bench binary and by ccmx_cli
/// (see obs/report.hpp).
inline constexpr std::string_view kRunReportSchema = "ccmx.run_report/1";

/// Benchmark-by-benchmark diff of two run-report directories — the CI
/// perf gate artifact (see obs/analysis.hpp).
inline constexpr std::string_view kBenchDiffSchema = "ccmx.bench_diff/1";

/// One JSONL line per run report, accumulated across commits in
/// bench/out/trajectory.jsonl (see obs/analysis.hpp).
inline constexpr std::string_view kTrajectorySchema = "ccmx.trajectory/1";

/// Least-squares drift fit of per-benchmark cpu_time across the
/// trajectory — `ccmx_insight trend` (see obs/analysis.hpp).
inline constexpr std::string_view kTrendSchema = "ccmx.trend/1";

/// Findings of the project-invariant static-analysis pass — `ccmx_lint`
/// (see lint/lint.hpp).
inline constexpr std::string_view kLintReportSchema = "ccmx.lint_report/1";

/// Findings of the whole-repo architecture analysis — module include
/// graph vs the declared layering plus the symbol cross-reference —
/// `ccmx_lint arch` (see lint/arch.hpp).
inline constexpr std::string_view kArchReportSchema = "ccmx.arch_report/1";

/// Chrome trace-event JSON converted from a ccmx JSONL trace —
/// `ccmx_insight trace --chrome` (see obs/trace_reader.hpp).  The
/// document is the trace-event "object format" with this schema id as an
/// extra top-level key (Perfetto ignores keys it does not know).
inline constexpr std::string_view kChromeTraceSchema = "ccmx.chrome_trace/1";

/// The data island embedded in `ccmx_insight html` dashboards — wraps
/// the run-report documents the page renders so they can be re-parsed
/// from the HTML (see obs/html_render.hpp).
inline constexpr std::string_view kDashboardDataSchema =
    "ccmx.dashboard_data/1";

/// One JSONL row per sampler tick — RSS, utime/stime, obs counter
/// deltas, and hardware-counter deltas over the interval, written by the
/// background telemetry sampler (see obs/hwcounters.hpp).
inline constexpr std::string_view kTimeseriesSchema = "ccmx.timeseries/1";

/// Whole-series rollup of a timeseries file — `ccmx_insight timeseries
/// --json` (sample count, wall span, RSS range, aggregate IPC).
inline constexpr std::string_view kTimeseriesSummarySchema =
    "ccmx.timeseries_summary/1";

/// JSONL stream of the sampling CPU profiler (see obs/profiler.hpp):
/// a "meta" row, interned "frame" rows, leaf-first "sample" rows
/// referencing frames by id, and a closing "ledger" row whose
/// conservation invariant is captured == written + dropped.
inline constexpr std::string_view kProfileSchema = "ccmx.profile/1";

/// Every schema id this repo may stamp into a document, for validators
/// that only need to know "is this one of ours".
inline constexpr std::string_view kRegisteredSchemas[] = {
    kRunReportSchema,     kBenchDiffSchema,  kTrajectorySchema,
    kTrendSchema,         kLintReportSchema, kArchReportSchema,
    kChromeTraceSchema,   kDashboardDataSchema, kTimeseriesSchema,
    kTimeseriesSummarySchema, kProfileSchema,
};

[[nodiscard]] constexpr bool is_registered_schema(
    std::string_view schema) noexcept {
  for (const std::string_view known : kRegisteredSchemas) {
    if (known == schema) return true;
  }
  return false;
}

}  // namespace ccmx::obs
