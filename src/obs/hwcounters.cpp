#include "obs/hwcounters.hpp"

#ifndef CCMX_OBS_DISABLED

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/schemas.hpp"
#include "util/narrow.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace ccmx::obs {

namespace {

// ------------------------------------------------------ counter state

enum HwEvent : std::size_t {
  kInstructions = 0,
  kCycles,
  kCacheReferences,
  kCacheMisses,
  kBranches,
  kBranchMisses,
  kTaskClock,
  kEventCount,
};

struct HwState {
  bool probed = false;
  bool available = false;
  std::string reason = "not probed";
  int fds[kEventCount] = {-1, -1, -1, -1, -1, -1, -1};
};

std::mutex& hw_mutex() {
  static std::mutex m;
  return m;
}

HwState& hw_state() {
  static HwState state;
  return state;
}

bool env_requests_off() {
  const char* env = std::getenv("CCMX_HW");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "off" || v == "0" || v == "false" || v == "OFF";
}

#if defined(__linux__)

long read_paranoid_level() {
  std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
  long level = -100;  // sentinel: file unreadable
  if (in.is_open()) in >> level;
  return level;
}

std::string errno_hint(int err) {
  switch (err) {
    case EPERM:
    case EACCES: {
      std::string hint = "EPERM (insufficient permission";
      const long paranoid = read_paranoid_level();
      if (paranoid != -100) {
        hint += "; perf_event_paranoid=" + std::to_string(paranoid);
      }
      hint += ")";
      return hint;
    }
    case ENOENT: return "ENOENT (event not supported by this PMU)";
    case ENOSYS: return "ENOSYS (kernel built without perf events)";
    case ENODEV: return "ENODEV (no PMU on this machine/VM)";
    default: return std::strerror(err);
  }
}

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int open_event(std::uint32_t type, std::uint64_t config, int& err) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  // inherit=1 so worker-pool threads spawned after the probe count too;
  // this is also why each event has its own fd — PERF_FORMAT_GROUP reads
  // and inherit do not combine.
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = sys_perf_event_open(&attr, 0, -1, -1, PERF_FLAG_FD_CLOEXEC);
  if (fd < 0) {
    err = errno;
    return -1;
  }
  return util::narrow_cast<int>(fd);
}

/// One fd's count, scaled by time_enabled/time_running so multiplexed
/// counters stay comparable; 0 for a closed fd or a failed read.
std::uint64_t read_scaled(int fd) noexcept {
  if (fd < 0) return 0;
  std::uint64_t buf[3] = {0, 0, 0};  // {value, time_enabled, time_running}
  if (::read(fd, buf, sizeof buf) != static_cast<ssize_t>(sizeof buf)) {
    return 0;
  }
  if (buf[2] == 0 || buf[1] == buf[2]) return buf[0];
  const double scaled = static_cast<double>(buf[0]) *
                        (static_cast<double>(buf[1]) /
                         static_cast<double>(buf[2]));
  return static_cast<std::uint64_t>(scaled);
}

/// Opens the counter set.  instructions + cycles are required; the rest
/// are optional (partial PMUs in VMs expose only a subset) and read 0
/// when absent.  Called once under hw_mutex().
void probe_locked(HwState& state) {
  state.probed = true;
  if (env_requests_off()) {
    state.available = false;
    state.reason = "disabled by CCMX_HW=off";
    return;
  }
  struct EventSpec {
    std::uint32_t type;
    std::uint64_t config;
    bool required;
  };
  static constexpr EventSpec kEvents[kEventCount] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, true},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, false},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, false},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS, false},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, false},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, false},
  };
  for (std::size_t i = 0; i < kEventCount; ++i) {
    int err = 0;
    state.fds[i] = open_event(kEvents[i].type, kEvents[i].config, err);
    if (state.fds[i] < 0 && kEvents[i].required) {
      for (std::size_t j = 0; j < i; ++j) {
        if (state.fds[j] >= 0) ::close(state.fds[j]);
        state.fds[j] = -1;
      }
      state.available = false;
      state.reason = "perf_event_open failed: " + errno_hint(err);
      return;
    }
  }
  state.available = true;
  state.reason.clear();
}

void close_fds_locked(HwState& state) noexcept {
  for (int& fd : state.fds) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

#else  // non-Linux

void probe_locked(HwState& state) {
  state.probed = true;
  state.available = false;
  state.reason = env_requests_off() ? "disabled by CCMX_HW=off"
                                    : "perf_event_open requires Linux";
}

void close_fds_locked(HwState&) noexcept {}

#endif  // __linux__

/// Probes on first call; the unavailable diagnostic prints once per
/// probe (re-probing is a test-only affair), never on the hot path.
const HwState& probed_state() {
  std::scoped_lock lock(hw_mutex());
  HwState& state = hw_state();
  if (!state.probed) {
    probe_locked(state);
    if (!state.available) {
      std::fprintf(stderr, "ccmx: hardware counters unavailable: %s\n",
                   state.reason.c_str());
    }
  }
  return state;
}

// ------------------------------------------------- /proc self sampling

struct ProcSample {
  std::int64_t rss_bytes = 0;
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
};

#if defined(__linux__)

ProcSample read_proc_self() {
  ProcSample sample;
  {
    // /proc/self/statm: size resident shared ... (pages).
    std::ifstream in("/proc/self/statm");
    std::uint64_t size_pages = 0;
    std::uint64_t resident_pages = 0;
    if (in >> size_pages >> resident_pages) {
      const long page = ::sysconf(_SC_PAGESIZE);
      sample.rss_bytes = static_cast<std::int64_t>(resident_pages) *
                         (page > 0 ? page : 4096);
    }
  }
  {
    // /proc/self/stat: "pid (comm) state ppid ...".  comm may contain
    // spaces, so split after the last ')'; field N (1-based, N >= 3) is
    // then token N-3 of the remainder.
    std::ifstream in("/proc/self/stat");
    std::string line;
    std::getline(in, line);
    const std::size_t close = line.rfind(')');
    if (close != std::string::npos) {
      std::istringstream rest(line.substr(close + 1));
      std::vector<std::string> tokens;
      std::string token;
      while (rest >> token && tokens.size() < 16) tokens.push_back(token);
      const long ticks = ::sysconf(_SC_CLK_TCK);
      const double tick_hz = ticks > 0 ? static_cast<double>(ticks) : 100.0;
      const auto field = [&](std::size_t n) -> std::uint64_t {
        // n is the 1-based field number from proc(5).
        return n - 3 < tokens.size()
                   ? std::strtoull(tokens[n - 3].c_str(), nullptr, 10)
                   : 0;
      };
      sample.minor_faults = field(10);
      sample.major_faults = field(12);
      sample.utime_seconds = static_cast<double>(field(14)) / tick_hz;
      sample.stime_seconds = static_cast<double>(field(15)) / tick_hz;
    }
  }
  return sample;
}

#elif defined(__unix__) || defined(__APPLE__)

ProcSample read_proc_self() {
  ProcSample sample;
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    sample.rss_bytes = static_cast<std::int64_t>(usage.ru_maxrss);
#else
    sample.rss_bytes = static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
    sample.utime_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                           static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    sample.stime_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                           static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
    sample.minor_faults = static_cast<std::uint64_t>(usage.ru_minflt);
    sample.major_faults = static_cast<std::uint64_t>(usage.ru_majflt);
  }
  return sample;
}

#else

ProcSample read_proc_self() { return {}; }

#endif

}  // namespace

// ---------------------------------------------------------- public api

bool hw_available() noexcept { return probed_state().available; }

std::string hw_unavailable_reason() { return probed_state().reason; }

HwCounters hw_read() noexcept {
  const HwState& state = probed_state();
  HwCounters counters;
  if (!state.available) return counters;
#if defined(__linux__)
  counters.available = true;
  counters.instructions = read_scaled(state.fds[kInstructions]);
  counters.cycles = read_scaled(state.fds[kCycles]);
  counters.cache_references = read_scaled(state.fds[kCacheReferences]);
  counters.cache_misses = read_scaled(state.fds[kCacheMisses]);
  counters.branches = read_scaled(state.fds[kBranches]);
  counters.branch_misses = read_scaled(state.fds[kBranchMisses]);
  counters.task_clock_ns = read_scaled(state.fds[kTaskClock]);
#endif
  return counters;
}

void hw_annotate_span(ScopedSpan& span, const HwCounters& delta) {
  if (!delta.available) {
    span.arg("hw.available", "false");
    return;
  }
  span.arg("hw.instructions", delta.instructions);
  span.arg("hw.cycles", delta.cycles);
  span.arg("hw.cache_misses", delta.cache_misses);
  span.arg("hw.branch_misses", delta.branch_misses);
  span.arg("hw.task_clock_ns", delta.task_clock_ns);
}

void hw_reset_for_testing() noexcept {
  std::scoped_lock lock(hw_mutex());
  HwState& state = hw_state();
  close_fds_locked(state);
  state.probed = false;
  state.available = false;
  state.reason = "not probed";
}

void hw_force_unavailable_for_testing(std::string_view reason) {
  std::scoped_lock lock(hw_mutex());
  HwState& state = hw_state();
  close_fds_locked(state);
  state.probed = true;
  state.available = false;
  state.reason = std::string(reason);
}

// ----------------------------------------------------------- sampler

struct TelemetrySampler::Impl {
  std::ofstream out;
  std::chrono::milliseconds interval{100};
  std::mutex mutex;  // serializes the tick loop with stop()'s final row
  std::condition_variable_any cv;
  std::jthread thread;
  std::atomic<bool> running{false};
  std::atomic<std::uint64_t> rows{0};

  std::uint64_t seq = 0;
  std::int64_t last_t_us = 0;
  HwCounters last_hw;
  std::map<std::string, std::uint64_t> last_counters;

  void write_row() {
    const std::int64_t t = now_us();
    const ProcSample proc = read_proc_self();
    const HwCounters hw_now = hw_read();
    const HwCounters hw = hw_delta(last_hw, hw_now);
    last_hw = hw_now;

    std::map<std::string, std::uint64_t> counters;
    for (const auto& [name, value] : snapshot().counters) {
      counters[name] = value;
    }

    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    w.key("schema").value(kTimeseriesSchema);
    w.key("seq").value(seq);
    w.key("t_us").value(t);
    w.key("dt_us").value(t - last_t_us);
    w.key("rss_bytes").value(proc.rss_bytes);
    w.key("utime_s").value(proc.utime_seconds);
    w.key("stime_s").value(proc.stime_seconds);
    w.key("minor_faults").value(proc.minor_faults);
    w.key("major_faults").value(proc.major_faults);
    // obs counter deltas over the interval; only counters that moved,
    // so idle rows stay small.
    w.key("counters").begin_object();
    for (const auto& [name, value] : counters) {
      const auto last = last_counters.find(name);
      const std::uint64_t before =
          last == last_counters.end() ? 0 : last->second;
      if (value > before) w.key(name).value(value - before);
    }
    w.end_object();
    w.key("hw").begin_object();
    w.key("available").value(hw.available);
    if (hw.available) {
      w.key("instructions").value(hw.instructions);
      w.key("cycles").value(hw.cycles);
      w.key("ipc").value(hw.ipc());
      w.key("cache_references").value(hw.cache_references);
      w.key("cache_misses").value(hw.cache_misses);
      w.key("cache_miss_rate").value(hw.cache_miss_rate());
      w.key("branches").value(hw.branches);
      w.key("branch_misses").value(hw.branch_misses);
      w.key("task_clock_ns").value(hw.task_clock_ns);
    }
    w.end_object();
    w.end_object();
    out << os.str() << '\n';
    out.flush();  // rows are rare; keep the file tail-able

    last_counters = std::move(counters);
    last_t_us = t;
    ++seq;
    rows.fetch_add(1, std::memory_order_relaxed);
  }

  void run(std::stop_token st) {
    std::unique_lock lock(mutex);
    while (true) {
      cv.wait_for(lock, st, interval, [&] { return st.stop_requested(); });
      if (st.stop_requested()) return;
      write_row();
    }
  }
};

TelemetrySampler::TelemetrySampler() : impl_(std::make_unique<Impl>()) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

bool TelemetrySampler::start(const SamplerOptions& options) {
  if (impl_->running.load()) {
    std::fprintf(stderr, "ccmx: telemetry sampler already running\n");
    return false;
  }
  impl_->out.open(options.path, std::ios::trunc | std::ios::binary);
  if (!impl_->out.is_open()) {
    std::fprintf(stderr, "ccmx: cannot open telemetry file: %s\n",
                 options.path.c_str());
    return false;
  }
  impl_->interval =
      std::chrono::milliseconds(options.interval_ms < 1 ? 1
                                                        : options.interval_ms);
  impl_->seq = 0;
  impl_->rows.store(0, std::memory_order_relaxed);
  impl_->last_t_us = now_us();
  impl_->last_hw = hw_read();
  impl_->last_counters.clear();
  for (const auto& [name, value] : snapshot().counters) {
    impl_->last_counters[name] = value;
  }
  impl_->running.store(true);
  impl_->thread =
      std::jthread([impl = impl_.get()](std::stop_token st) { impl->run(st); });
  return true;
}

bool TelemetrySampler::start_from_env() {
  const char* path = std::getenv("CCMX_SAMPLE_FILE");
  if (path == nullptr || path[0] == '\0') return false;
  SamplerOptions options;
  options.path = path;
  if (const char* ms = std::getenv("CCMX_SAMPLE_MS")) {
    const long long parsed = std::strtoll(ms, nullptr, 10);
    if (parsed > 0) options.interval_ms = parsed;
  }
  return start(options);
}

void TelemetrySampler::stop() {
  if (!impl_->running.exchange(false)) return;
  impl_->thread.request_stop();
  impl_->cv.notify_all();
  impl_->thread.join();
  // Final row after the join: even a run shorter than one interval gets
  // a usable series, and the row covers the tail of the run.
  impl_->write_row();
  impl_->out.flush();
  impl_->out.close();
}

bool TelemetrySampler::running() const noexcept {
  return impl_->running.load();
}

std::uint64_t TelemetrySampler::rows_written() const noexcept {
  return impl_->rows.load(std::memory_order_relaxed);
}

}  // namespace ccmx::obs

#endif  // CCMX_OBS_DISABLED
