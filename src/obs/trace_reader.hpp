// Strict reader for the JSONL channel traces that comm::Channel streams
// when CCMX_TRACE_FILE is set.
//
// Li–Sun–Wang–Woodruff-style analyses treat the per-round, per-agent
// traffic as the primary quantity, so this module reconstructs exactly
// that from the raw event stream: sends are grouped by channel id, rounds
// are rebuilt from speaker alternation and cross-checked against the
// recorded round numbers, and the totals are conserved against the
// comm.bits.agent0/1 counters of a matching run report.  The parser is
// deliberately strict — a malformed line, a gap in the per-channel
// message sequence, or a truncated final line (no trailing newline, the
// signature of a killed writer) all throw util::contract_error with the
// offending line number, so a corrupt trace can never silently produce a
// wrong table.
//
// fit_power_law() is the shared least-squares half of the E1/E2/E11
// analyses: log2-log2 regression of measured bits against the paper's
// predictors (k·n² for the send-half bound, n²·max{log n, log k} for
// fingerprinting).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ccmx::obs {

/// One {"ev":"send",...} line.
struct SendEvent {
  std::uint64_t channel = 0;  // "ch"; 0 for traces predating the field
  unsigned from = 0;          // sending agent, 0 or 1
  std::uint64_t bits = 0;     // payload size of this message
  std::uint64_t round = 0;    // 1-based round number recorded by the writer
  std::uint64_t msg = 0;      // 1-based message number within the channel
  std::uint64_t span = 0;     // enclosing span id; 0 = none / legacy trace
  std::uint64_t tid = 0;      // writer thread id; 0 for legacy traces
  std::int64_t t_us = 0;
};

/// One {"ev":"span",...} line.  id == 0 marks the legacy (pre-span-tree)
/// format, which carried only name/t_us/dur_us: such spans are kept for
/// totals but excluded from tree reconstruction.
struct SpanEvent {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t tid = 0;
  std::string name;
  std::int64_t t_us = 0;    // start time (emission happens at scope exit)
  std::int64_t dur_us = 0;
  /// "args" members, stringified (numbers rendered shortest-round-trip).
  std::vector<std::pair<std::string, std::string>> args;

  [[nodiscard]] std::int64_t end_us() const noexcept { return t_us + dur_us; }
};

/// One reconstructed round: consecutive sends by the same speaker.
struct RoundStats {
  std::uint64_t round = 0;
  unsigned speaker = 0;
  std::uint64_t bits = 0;
  std::uint64_t messages = 0;
};

struct AgentStats {
  std::uint64_t bits = 0;
  std::uint64_t messages = 0;
};

/// All traffic of one Channel object (one protocol execution).
struct ChannelStats {
  std::uint64_t id = 0;
  std::vector<SendEvent> sends;
  std::vector<RoundStats> rounds;
  AgentStats agents[2];

  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return agents[0].bits + agents[1].bits;
  }
};

/// A fully parsed trace: per-channel traffic plus process-wide totals.
struct ChannelTrace {
  std::vector<ChannelStats> channels;  // ordered by first appearance
  AgentStats agents[2];                // summed over all channels
  std::vector<SpanEvent> spans;        // in file (= scope-exit) order
  std::uint64_t send_events = 0;
  std::uint64_t span_events = 0;
  std::uint64_t other_events = 0;  // neither send nor span; not modeled

  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return agents[0].bits + agents[1].bits;
  }
  [[nodiscard]] std::uint64_t total_rounds() const noexcept;
};

/// Parses a complete JSONL trace.  Throws util::contract_error (with a
/// 1-based line number) on: a line that is not a JSON object, a missing
/// or non-string "ev", a "send" event with missing/ill-typed fields or an
/// out-of-range agent, a per-channel message-sequence gap, a recorded
/// round number that contradicts the speaker-alternation reconstruction,
/// or input whose final line is not newline-terminated (truncation).
[[nodiscard]] ChannelTrace parse_channel_trace(std::string_view text);

/// Reads and parses a trace file; throws on unreadable paths too.  The
/// file moves through TraceStream in bounded chunks, so only the parsed
/// representation (not the raw bytes) is ever resident.
[[nodiscard]] ChannelTrace read_channel_trace_file(const std::string& path);

// ------------------------------------------------------ streaming reader

/// Knobs for TraceStream.  The defaults reproduce parse_channel_trace's
/// strict behavior exactly; the tolerant flags exist for traces written
/// under CCMX_TRACE_POLICY=drop or by a killed writer, where losses are
/// expected and must be *surfaced* (TraceReadStats) rather than thrown.
struct TraceReadOptions {
  /// Tolerate forward per-channel message-sequence gaps (lines lost to
  /// drop backpressure): the gap is counted, round reconstruction for
  /// that channel switches from speaker alternation to the recorded
  /// round numbers, and parsing continues.  Backward message numbers
  /// still throw — drops only ever remove lines.
  bool tolerate_gaps = false;
  /// Tolerate a final line without its newline (killed writer): counted
  /// as one truncation, the partial line is discarded.
  bool tolerate_truncated_tail = false;
  /// Keep every SendEvent in ChannelStats::sends.  Off = per-channel and
  /// per-round aggregates only, so memory stays bounded by the number of
  /// channels and rounds, not events.
  bool keep_sends = true;
  /// Keep every SpanEvent in ChannelTrace::spans (off: spans are counted
  /// and forwarded to on_span, never stored).
  bool keep_spans = true;
};

/// What the streaming reader observed beyond the trace content itself.
struct TraceReadStats {
  std::uint64_t lines = 0;            ///< non-empty event lines parsed
  std::uint64_t gap_events = 0;       ///< message-sequence gaps tolerated
  std::uint64_t gapped_channels = 0;  ///< channels with >= 1 gap
  bool truncated_tail = false;        ///< final line lacked its newline
};

/// Chunked streaming parser over JSONL trace bytes: feed() arbitrary
/// partial chunks (lines may split anywhere), then finish().  Aggregates
/// accumulate in trace(); per-event callbacks see every send/span in
/// file order, so converters (e.g. ChromeTraceWriter) can run in O(1)
/// memory over the event count.
class TraceStream {
 public:
  explicit TraceStream(TraceReadOptions options = {});

  /// Per-event hooks, invoked before the event folds into the
  /// aggregates.  Install before feeding.
  std::function<void(const SendEvent&)> on_send;
  std::function<void(const SpanEvent&)> on_span;

  /// Parses every complete line in `chunk`; a trailing partial line is
  /// carried into the next feed().  Throws like parse_channel_trace,
  /// subject to TraceReadOptions.
  void feed(std::string_view chunk);

  /// Settles the carry buffer (a leftover partial line is a truncated
  /// tail).  feed() must not be called afterwards.
  void finish();

  /// Streams a whole file through feed()/finish() in bounded chunks;
  /// throws on unreadable paths.
  void consume_file(const std::string& path);

  [[nodiscard]] const TraceReadStats& stats() const noexcept {
    return stats_;
  }
  /// The accumulated trace (aggregates always; sends/spans only when the
  /// corresponding keep_* option is on).
  [[nodiscard]] const ChannelTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] ChannelTrace take_trace() noexcept {
    return std::move(trace_);
  }

 private:
  /// Per-channel reconstruction state, kept here instead of relying on
  /// ChannelStats::sends so keep_sends=false changes nothing.
  struct ChannelState {
    std::size_t index = 0;       // into trace_.channels
    std::uint64_t next_msg = 1;  // expected next message number
    bool gapped = false;         // rounds rebuilt from recorded numbers
  };

  void parse_line(std::string_view line);
  void handle_send(const json::Value& obj);

  TraceReadOptions options_;
  TraceReadStats stats_;
  ChannelTrace trace_;
  std::map<std::uint64_t, ChannelState> channels_;
  std::string carry_;       // partial line split across feed() chunks
  std::size_t line_no_ = 0;
  bool finished_ = false;
};

// -------------------------------------------------- telemetry timeseries

/// One parsed ccmx.timeseries/1 row (see obs/hwcounters.hpp for the
/// writer).  rss/utime/stime are cumulative at the sample instant; the
/// hw numbers and counter deltas cover the interval since the previous
/// row (dt_us).
struct TimeseriesRow {
  std::uint64_t seq = 0;
  std::int64_t t_us = 0;
  std::int64_t dt_us = 0;
  std::int64_t rss_bytes = 0;
  double utime_s = 0.0;
  double stime_s = 0.0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  /// obs counter deltas over the interval (only counters that moved).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  bool hw_available = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;
  double cache_miss_rate = 0.0;
  std::uint64_t task_clock_ns = 0;
};

/// A loaded telemetry series.  Foreign-schema or unparseable lines are
/// counted in `skipped`, structural issues (unreadable file, rows out of
/// order) land in `problems` — tolerant by design, since a sampler can
/// be killed mid-row.
struct TimeseriesResult {
  std::string path;
  std::vector<TimeseriesRow> rows;
  std::size_t skipped = 0;
  std::vector<std::string> problems;

  /// Wall-clock span covered by the rows, in seconds (0 for < 2 rows).
  [[nodiscard]] double span_seconds() const noexcept {
    return rows.size() < 2 ? 0.0
                           : static_cast<double>(rows.back().t_us -
                                                 rows.front().t_us) /
                                 1e6;
  }
};

/// Loads a ccmx.timeseries/1 JSONL file.  A missing file is a problem
/// (callers asked for this path explicitly), malformed or foreign lines
/// are skipped and counted, and a torn final line (killed sampler) counts
/// as one skip, not an error.
[[nodiscard]] TimeseriesResult load_timeseries(const std::string& path);

/// Conservation check of a trace against the counters of a
/// ccmx.run_report/1 document from the same process: comm.bits.agent0/1,
/// comm.messages, comm.rounds, and the per-round bit partition
/// (comm.bits.round1..round8 + comm.bits.round_overflow) must all match
/// the reconstruction exactly.  Returns human-readable mismatches
/// (empty = conserved).  Reports with no comm.* counters (untraced run)
/// fail the check — that trace and report cannot be from the same
/// instrumented run; reports that merely predate the per-round counters
/// only fail when the trace carries bits for the missing bucket.
[[nodiscard]] std::vector<std::string> check_trace_against_report(
    const ChannelTrace& trace, const json::Value& report_doc);

/// Least-squares fit of log2(y) = slope * log2(x) + intercept over
/// strictly positive samples.
struct PowerLawFit {
  double slope = 0.0;
  double log2_intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination in log-log space
  std::size_t points = 0;
};

/// Fits (x, y) pairs; pairs with x <= 0 or y <= 0 are rejected
/// (util::contract_error), as is a sample with fewer than two distinct x.
[[nodiscard]] PowerLawFit fit_power_law(
    const std::vector<std::pair<double, double>>& xy);

// ----------------------------------------------------------- span trees

/// One node of the reconstructed span tree.  Indices refer to
/// SpanForest::spans (the event) and SpanForest::nodes (the children).
struct SpanNode {
  std::size_t span = 0;               // index into SpanForest::spans
  std::vector<std::size_t> children;  // node indices, ordered by t_us
  std::size_t depth = 0;              // 0 at the root
  std::int64_t self_us = 0;           // dur_us minus the children's dur_us
};

/// All spans of one thread, tree-shaped.
struct ThreadSpans {
  std::uint64_t tid = 0;
  std::vector<std::size_t> roots;  // node indices, ordered by t_us
  std::int64_t first_us = 0;       // earliest start across the roots
  std::int64_t last_us = 0;        // latest end across the roots
};

/// Per-thread span trees rebuilt from the flat event stream, with
/// self-time attribution and structural diagnostics.
struct SpanForest {
  std::vector<SpanEvent> spans;      // tree-participating spans, by t_us
  std::vector<SpanNode> nodes;       // one per entry of `spans`
  std::vector<ThreadSpans> threads;  // ordered by tid
  std::size_t legacy_spans = 0;      // id == 0 events, kept out of the tree
  /// Structural anomalies: duplicate ids, a parent that is missing or on
  /// another thread, a child interval leaking outside its parent
  /// ("unbalanced"), same-parent siblings overlapping in time
  /// ("interleaved").  Empty = clean.
  std::vector<std::string> problems;
};

/// Rebuilds the per-thread span trees from span events.  Malformed
/// *structure* lands in SpanForest::problems (the offending span is
/// reattached as a root so the forest is still renderable); this never
/// throws — parse-level strictness already happened in
/// parse_channel_trace.
[[nodiscard]] SpanForest build_span_forest(
    const std::vector<SpanEvent>& spans);

// -------------------------------------------------- Chrome trace export

/// Converts a parsed ccmx trace to Chrome trace-event JSON (the Perfetto
/// / chrome://tracing "JSON object format"): spans become complete ("X")
/// events on their thread's track, channel sends become paired slices on
/// per-agent tracks with flow arrows ("s"/"f") from sender to receiver,
/// and metadata events name every track.  The document carries
/// "schema": "ccmx.chrome_trace/1" next to "traceEvents" (the format
/// ignores unknown top-level keys).
[[nodiscard]] std::string render_chrome_trace(const ChannelTrace& trace);

/// Incremental form of render_chrome_trace for streaming conversion:
/// hook add_span/add_send into TraceStream's callbacks and events write
/// straight through to `os`, so a million-span trace converts without a
/// materialized ChannelTrace.  Track metadata is collected on the fly
/// and emitted at finish() — the JSON object format ignores ordering
/// inside traceEvents, so metadata-last renders identically.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);

  void add_span(const SpanEvent& span);
  void add_send(const SendEvent& send);

  /// Emits the track metadata and closes the document.  Must be called
  /// exactly once, after the last event.
  void finish();

 private:
  std::ostream* os_;
  json::Writer w_;
  std::vector<std::uint64_t> span_tids_;  // deduped at finish
  bool any_send_ = false;
  bool finished_ = false;
  std::uint64_t flow_id_ = 0;
};

}  // namespace ccmx::obs
