// Strict reader for the JSONL channel traces that comm::Channel streams
// when CCMX_TRACE_FILE is set.
//
// Li–Sun–Wang–Woodruff-style analyses treat the per-round, per-agent
// traffic as the primary quantity, so this module reconstructs exactly
// that from the raw event stream: sends are grouped by channel id, rounds
// are rebuilt from speaker alternation and cross-checked against the
// recorded round numbers, and the totals are conserved against the
// comm.bits.agent0/1 counters of a matching run report.  The parser is
// deliberately strict — a malformed line, a gap in the per-channel
// message sequence, or a truncated final line (no trailing newline, the
// signature of a killed writer) all throw util::contract_error with the
// offending line number, so a corrupt trace can never silently produce a
// wrong table.
//
// fit_power_law() is the shared least-squares half of the E1/E2/E11
// analyses: log2-log2 regression of measured bits against the paper's
// predictors (k·n² for the send-half bound, n²·max{log n, log k} for
// fingerprinting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ccmx::obs {

/// One {"ev":"send",...} line.
struct SendEvent {
  std::uint64_t channel = 0;  // "ch"; 0 for traces predating the field
  unsigned from = 0;          // sending agent, 0 or 1
  std::uint64_t bits = 0;     // payload size of this message
  std::uint64_t round = 0;    // 1-based round number recorded by the writer
  std::uint64_t msg = 0;      // 1-based message number within the channel
  std::int64_t t_us = 0;
};

/// One reconstructed round: consecutive sends by the same speaker.
struct RoundStats {
  std::uint64_t round = 0;
  unsigned speaker = 0;
  std::uint64_t bits = 0;
  std::uint64_t messages = 0;
};

struct AgentStats {
  std::uint64_t bits = 0;
  std::uint64_t messages = 0;
};

/// All traffic of one Channel object (one protocol execution).
struct ChannelStats {
  std::uint64_t id = 0;
  std::vector<SendEvent> sends;
  std::vector<RoundStats> rounds;
  AgentStats agents[2];

  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return agents[0].bits + agents[1].bits;
  }
};

/// A fully parsed trace: per-channel traffic plus process-wide totals.
struct ChannelTrace {
  std::vector<ChannelStats> channels;  // ordered by first appearance
  AgentStats agents[2];                // summed over all channels
  std::uint64_t send_events = 0;
  std::uint64_t other_events = 0;  // spans etc.; parsed but not modeled

  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return agents[0].bits + agents[1].bits;
  }
  [[nodiscard]] std::uint64_t total_rounds() const noexcept;
};

/// Parses a complete JSONL trace.  Throws util::contract_error (with a
/// 1-based line number) on: a line that is not a JSON object, a missing
/// or non-string "ev", a "send" event with missing/ill-typed fields or an
/// out-of-range agent, a per-channel message-sequence gap, a recorded
/// round number that contradicts the speaker-alternation reconstruction,
/// or input whose final line is not newline-terminated (truncation).
[[nodiscard]] ChannelTrace parse_channel_trace(std::string_view text);

/// Reads and parses a trace file; throws on unreadable paths too.
[[nodiscard]] ChannelTrace read_channel_trace_file(const std::string& path);

/// Conservation check of a trace against the counters of a
/// ccmx.run_report/1 document from the same process: comm.bits.agent0/1,
/// comm.messages, comm.rounds, and the per-round bit partition
/// (comm.bits.round1..round8 + comm.bits.round_overflow) must all match
/// the reconstruction exactly.  Returns human-readable mismatches
/// (empty = conserved).  Reports with no comm.* counters (untraced run)
/// fail the check — that trace and report cannot be from the same
/// instrumented run; reports that merely predate the per-round counters
/// only fail when the trace carries bits for the missing bucket.
[[nodiscard]] std::vector<std::string> check_trace_against_report(
    const ChannelTrace& trace, const json::Value& report_doc);

/// Least-squares fit of log2(y) = slope * log2(x) + intercept over
/// strictly positive samples.
struct PowerLawFit {
  double slope = 0.0;
  double log2_intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination in log-log space
  std::size_t points = 0;
};

/// Fits (x, y) pairs; pairs with x <= 0 or y <= 0 are rejected
/// (util::contract_error), as is a sample with fewer than two distinct x.
[[nodiscard]] PowerLawFit fit_power_law(
    const std::vector<std::pair<double, double>>& xy);

}  // namespace ccmx::obs
