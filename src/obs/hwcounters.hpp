// Hardware-counter attribution and the background telemetry sampler.
//
// Why: every perf claim in this repo rests on cpu_time, which is noisy on
// shared CI runners (the regression gate needs a ±50% tolerance there).
// Retired-instruction counts are near-deterministic run to run and
// separate "doing more work" from "doing the same work with worse IPC",
// so the diff gate can be far tighter on them.
//
// The counter set is fixed: instructions, cycles, cache-references,
// cache-misses, branches, branch-misses (PERF_TYPE_HARDWARE) plus
// task-clock (PERF_TYPE_SOFTWARE), each opened as its own perf fd with
// inherit=1 so threads spawned later (the worker pool) are included —
// PERF_FORMAT_GROUP and inherit do not combine, which is why there is no
// counter *group* fd.  Counts are scaled by time_enabled/time_running, so
// they stay meaningful when the PMU multiplexes.
//
// Graceful degradation is a first-class mode, not an error: EPERM/EACCES
// (perf_event_paranoid too strict), ENOSYS/ENOENT (no PMU — common in
// containers and VMs), `CCMX_HW=off`, and non-Linux builds all yield
// hw_available()==false with a once-per-probe stderr diagnostic, and
// every snapshot carries available=false so downstream consumers render
// "unavailable" instead of zeros.
//
// TelemetrySampler is a background std::jthread (same shape as the trace
// drainer: stop_token, explicit lifecycle) that appends one
// ccmx.timeseries/1 JSONL row every CCMX_SAMPLE_MS: RSS and utime/stime
// from /proc/self, obs counter deltas, and hw deltas over the interval.
//
// Defining CCMX_OBS_DISABLED (CMake CCMX_OBS=OFF) compiles all of this
// down to inline no-ops, like the rest of the obs layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace ccmx::obs {

/// One snapshot (or delta) of the fixed hardware-counter set.  A plain
/// value type in every build mode; `available` is false when the
/// numbers mean nothing (counters degraded or never opened) and
/// consumers must render "unavailable", never the zeros.
struct HwCounters {
  bool available = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t task_clock_ns = 0;

  /// Instructions per cycle; 0 when unavailable or no cycles elapsed.
  [[nodiscard]] double ipc() const noexcept {
    return available && cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  /// cache_misses / cache_references; 0 when unavailable or unreferenced.
  [[nodiscard]] double cache_miss_rate() const noexcept {
    return available && cache_references > 0
               ? static_cast<double>(cache_misses) /
                     static_cast<double>(cache_references)
               : 0.0;
  }
  /// branch_misses / branches; 0 when unavailable or branch-free.
  [[nodiscard]] double branch_miss_rate() const noexcept {
    return available && branches > 0
               ? static_cast<double>(branch_misses) /
                     static_cast<double>(branches)
               : 0.0;
  }
};

/// end - start, field by field, saturating at 0 (multiplex scaling can
/// make totals regress by a rounding error).  The result is available
/// only when both operands are.
[[nodiscard]] inline HwCounters hw_delta(const HwCounters& start,
                                         const HwCounters& end) noexcept {
  const auto sub = [](std::uint64_t a, std::uint64_t b) noexcept {
    return b > a ? b - a : std::uint64_t{0};
  };
  HwCounters d;
  d.available = start.available && end.available;
  d.instructions = sub(start.instructions, end.instructions);
  d.cycles = sub(start.cycles, end.cycles);
  d.cache_references = sub(start.cache_references, end.cache_references);
  d.cache_misses = sub(start.cache_misses, end.cache_misses);
  d.branches = sub(start.branches, end.branches);
  d.branch_misses = sub(start.branch_misses, end.branch_misses);
  d.task_clock_ns = sub(start.task_clock_ns, end.task_clock_ns);
  return d;
}

/// Explicit sampler configuration (CLIs and tests; normal runs configure
/// through CCMX_SAMPLE_FILE / CCMX_SAMPLE_MS instead).
struct SamplerOptions {
  std::string path;
  /// Milliseconds between rows; values below 1 are clamped to 1.
  std::int64_t interval_ms = 100;
};

#ifndef CCMX_OBS_DISABLED

/// True when the perf counter set is open and counting.  The first call
/// probes: honors CCMX_HW=off, opens the fds (instructions and cycles
/// are required, the rest optional — some hypervisors expose only a
/// partial PMU), and on failure reports the reason to stderr once and
/// latches unavailable for the rest of the process.
[[nodiscard]] bool hw_available() noexcept;

/// Human-readable reason counters are unavailable ("" when available):
/// "CCMX_HW=off", "perf_event_open failed: EPERM (perf_event_paranoid=N;
/// lower it or run privileged)", "not a Linux build", ...
[[nodiscard]] std::string hw_unavailable_reason();

/// Current counter totals since the probe opened the fds (multiplex
/// scaled).  available=false snapshot when degraded.
[[nodiscard]] HwCounters hw_read() noexcept;

/// RAII scoped measurement: snapshots at construction, delta() reads the
/// distance travelled since.  Cheap when unavailable (no syscalls).
class HwRegion {
 public:
  HwRegion() : start_(hw_read()) {}

  [[nodiscard]] bool available() const noexcept { return start_.available; }
  [[nodiscard]] HwCounters delta() const noexcept {
    return hw_delta(start_, hw_read());
  }

 private:
  HwCounters start_;
};

/// Attaches a delta's headline numbers to a span as args
/// ("hw.instructions", "hw.cycles", "hw.cache_misses", "hw.branch_misses",
/// "hw.task_clock_ns").  Emits "hw.available"="false" instead when the
/// delta is degraded, so traces never show silent zeros.
void hw_annotate_span(ScopedSpan& span, const HwCounters& delta);

/// Test hooks.  hw_reset_for_testing() closes the fds and forgets the
/// probe result so the next hw_available() re-reads the environment;
/// hw_force_unavailable_for_testing() latches the degraded mode with a
/// given reason (simulating EPERM without needing a locked-down kernel).
void hw_reset_for_testing() noexcept;
void hw_force_unavailable_for_testing(std::string_view reason);

/// Background telemetry sampler.  start() spawns a std::jthread that
/// appends one ccmx.timeseries/1 JSONL row to the file every interval
/// and a final row at stop(), so even a run shorter than one interval
/// produces a usable series.  stop() is idempotent and implied by the
/// destructor; start() while running is refused.
class TelemetrySampler {
 public:
  TelemetrySampler();
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// False (with a one-line stderr diagnostic) when the file cannot be
  /// opened or the sampler is already running.
  bool start(const SamplerOptions& options);

  /// Reads CCMX_SAMPLE_FILE (+ CCMX_SAMPLE_MS, default 100); false
  /// without starting when CCMX_SAMPLE_FILE is unset or empty.
  bool start_from_env();

  /// Writes the final row, joins the thread, flushes, and closes.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Rows written so far (final row included after stop()); for tests.
  [[nodiscard]] std::uint64_t rows_written() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // CCMX_OBS_DISABLED: inline no-ops, like the rest of the layer.

[[nodiscard]] inline bool hw_available() noexcept { return false; }
[[nodiscard]] inline std::string hw_unavailable_reason() {
  return "observability compiled out (CCMX_OBS=OFF)";
}
[[nodiscard]] inline HwCounters hw_read() noexcept { return {}; }

class HwRegion {
 public:
  HwRegion() = default;
  [[nodiscard]] bool available() const noexcept { return false; }
  [[nodiscard]] HwCounters delta() const noexcept { return {}; }
};

inline void hw_annotate_span(ScopedSpan&, const HwCounters&) {}
inline void hw_reset_for_testing() noexcept {}
inline void hw_force_unavailable_for_testing(std::string_view) {}

class TelemetrySampler {
 public:
  TelemetrySampler() = default;
  bool start(const SamplerOptions&) { return false; }
  bool start_from_env() { return false; }
  void stop() {}
  [[nodiscard]] bool running() const noexcept { return false; }
  [[nodiscard]] std::uint64_t rows_written() const noexcept { return 0; }
};

#endif  // CCMX_OBS_DISABLED

}  // namespace ccmx::obs
