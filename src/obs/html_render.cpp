#include "obs/html_render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/schemas.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace {

// ------------------------------------------------------------ utilities

// ccmx_obs sits below ccmx_util in the link order, so the fixed-point
// formatter is replicated here instead of pulling util/table.hpp in.
std::string fmt_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string html_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Tag-stack HTML writer: close() pops the innermost open element, and
/// finish() refuses to return until everything opened was closed — so
/// the emitted document has balanced tags by construction, which the
/// well-formedness tests then verify independently.
class HtmlWriter {
 public:
  using Attrs = std::vector<std::pair<std::string_view, std::string>>;

  HtmlWriter& open(std::string_view tag, const Attrs& attrs = {}) {
    emit_tag(tag, attrs, /*self_close=*/false);
    stack_.emplace_back(tag);
    return *this;
  }

  HtmlWriter& close() {
    CCMX_REQUIRE(!stack_.empty(), "html: close() with no open element");
    out_ += "</" + stack_.back() + ">";
    stack_.pop_back();
    return *this;
  }

  /// Self-closing element (<rect .../>); valid in the SVG namespace and
  /// for HTML void elements.
  HtmlWriter& leaf(std::string_view tag, const Attrs& attrs = {}) {
    emit_tag(tag, attrs, /*self_close=*/true);
    return *this;
  }

  HtmlWriter& text(std::string_view raw) {
    out_ += html_escape(raw);
    return *this;
  }

  /// Open + text + close in one call.
  HtmlWriter& element(std::string_view tag, const Attrs& attrs,
                      std::string_view body) {
    open(tag, attrs);
    text(body);
    return close();
  }

  /// Pre-escaped content (the <style> block, the JSON data island).
  HtmlWriter& raw(std::string_view pre_escaped) {
    out_ += pre_escaped;
    return *this;
  }

  HtmlWriter& newline() {
    out_ += '\n';
    return *this;
  }

  [[nodiscard]] std::string finish() {
    CCMX_REQUIRE(stack_.empty(), "html: finish() with unclosed <" +
                                     (stack_.empty() ? "" : stack_.back()) +
                                     ">");
    return std::move(out_);
  }

 private:
  void emit_tag(std::string_view tag, const Attrs& attrs, bool self_close) {
    out_ += '<';
    out_ += tag;
    for (const auto& [name, value] : attrs) {
      out_ += ' ';
      out_ += name;
      out_ += "=\"";
      out_ += html_escape(value);
      out_ += '"';
    }
    out_ += self_close ? "/>" : ">";
  }

  std::string out_;
  std::vector<std::string> stack_;
};

std::string fmt_us(std::int64_t us) {
  const double d = static_cast<double>(us);
  if (us >= 2'000'000) return fmt_fixed(d * 1e-6, 2) + " s";
  if (us >= 2'000) return fmt_fixed(d * 1e-3, 2) + " ms";
  return std::to_string(us) + " \xC2\xB5s";  // µs
}

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) out += "\xE2\x80\xAF";  // ' '
    out += digits[i];
  }
  return out;
}

std::string fmt_svg(double v) {
  // SVG coordinates: one decimal is plenty and keeps the file small.
  return fmt_fixed(v, 1);
}

double number_or(const json::Value& obj, std::string_view key,
                 double fallback) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string string_or(const json::Value& obj, std::string_view key,
                      std::string_view fallback) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

/// Fixed categorical assignment (see docs: color follows the entity):
/// the first 7 distinct names by rank get the palette slots in order,
/// everything else folds to the muted "other" tone.
constexpr std::size_t kCategoricalSlots = 7;

std::string series_var(std::size_t slot) {
  return "var(--s" + std::to_string(slot + 1) + ")";
}

// --------------------------------------------------------------- styles

// The palette is the dataviz reference instance: light/dark surfaces and
// ink plus seven categorical slots, declared once as custom properties
// so both modes share one chart body.  No external fonts, no fetches.
constexpr std::string_view kStyle = R"css(
:root {
  color-scheme: light dark;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --other: #898781;
  --good: #006300; --bad: #d03b3b; --warnc: #ec835a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9;
    --good: #0ca30c; --bad: #e66767; --warnc: #ec835a;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 10px; }
.provenance { color: var(--ink2); margin: 0 0 18px; }
.note { color: var(--muted); font-style: italic; }
section.card {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 0 0 16px;
}
table { border-collapse: collapse; width: 100%; margin: 6px 0; }
th, td { text-align: left; padding: 4px 10px 4px 0; white-space: nowrap; }
th { color: var(--muted); font-weight: 600; border-bottom: 1px solid var(--grid); }
td { border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0; }
.tile {
  border: 1px solid var(--border); border-radius: 6px;
  padding: 8px 14px; min-width: 120px;
}
.tile .v { font-size: 20px; }
.tile .k { color: var(--muted); font-size: 12px; }
.chip {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 6px; vertical-align: baseline;
}
.legend { color: var(--ink2); font-size: 12px; margin: 4px 0; }
.legend span.item { margin-right: 14px; }
.verdict-regression { color: var(--bad); font-weight: 600; }
.verdict-improvement { color: var(--good); font-weight: 600; }
.verdict-neutral { color: var(--muted); }
.problems { color: var(--warnc); }
svg { display: block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
footer { color: var(--muted); margin-top: 24px; font-size: 12px; }
)css";

// ---------------------------------------------------------- the renderer

class Dashboard {
 public:
  explicit Dashboard(const DashboardData& data) : data_(data) {}

  std::string render() {
    w_.raw("<!DOCTYPE html>").newline();
    w_.open("html", {{"lang", "en"}});
    head();
    w_.open("body");
    w_.open("main");
    header();
    reports_section();
    timeseries_section();
    trajectory_section();
    diff_section();
    arch_section();
    traffic_section();
    pipeline_section();
    flame_section();
    profile_section();
    data_island();
    w_.open("footer");
    w_.text(
        "Generated by ccmx_insight html \xE2\x80\x94 one self-contained "
        "file: inline SVG and CSS only, no scripts, no external "
        "resources. The run-report JSON this page was rendered from is "
        "embedded in the ");
    w_.element("code", {}, "ccmx-dashboard-data");
    w_.text(" island above.");
    w_.close();  // footer
    w_.close();  // main
    w_.close();  // body
    w_.close();  // html
    w_.newline();
    return w_.finish();
  }

 private:
  void head() {
    w_.open("head");
    w_.leaf("meta", {{"charset", "utf-8"}});
    w_.leaf("meta", {{"name", "viewport"},
                     {"content", "width=device-width, initial-scale=1"}});
    w_.element("title", {},
               data_.title.empty() ? "ccmx dashboard" : data_.title);
    w_.open("style").raw(kStyle).close();
    w_.close();  // head
  }

  void header() {
    w_.element("h1", {},
               data_.title.empty() ? "ccmx observability dashboard"
                                   : data_.title);
    if (!data_.provenance.empty()) {
      w_.element("p", {{"class", "provenance"}}, data_.provenance);
    }
  }

  // ---- run reports -----------------------------------------------------

  void reports_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Run reports");
    const LoadResult& loaded = *data_.reports;
    if (loaded.reports.empty()) {
      w_.element("p", {{"class", "note"}}, "No valid run reports loaded.");
    } else {
      w_.open("table");
      w_.open("thead").open("tr");
      for (const char* h : {"report", "git", "build"}) {
        w_.element("th", {}, h);
      }
      for (const char* h :
           {"wall s", "cpu s", "max RSS", "benchmarks", "errors"}) {
        w_.element("th", {{"class", "num"}}, h);
      }
      w_.close().close();  // tr, thead
      w_.open("tbody");
      for (const LoadedReport& report : loaded.reports) {
        w_.open("tr");
        w_.element("td", {}, report.name);
        w_.element("td", {}, report.git_sha.substr(0, 12));
        w_.element("td", {}, report.build_type);
        w_.element("td", {{"class", "num"}},
                   fmt_fixed(report.wall_seconds, 2));
        w_.element("td", {{"class", "num"}},
                   fmt_fixed(report.cpu_seconds, 2));
        w_.element("td", {{"class", "num"}},
                   report.max_rss_bytes > 0
                       ? fmt_fixed(
                             static_cast<double>(report.max_rss_bytes) /
                                 (1024.0 * 1024.0),
                             1) + " MiB"
                       : std::string("\xE2\x80\x94"));
        std::size_t benches = 0;
        std::size_t errors = 0;
        if (const json::Value* rows = report.doc.find("benchmarks")) {
          if (rows->is_array()) {
            benches = rows->array.size();
            for (const json::Value& row : rows->array) {
              const json::Value* err = row.find("error");
              if (err != nullptr && err->is_bool() && err->boolean) ++errors;
            }
          }
        }
        w_.element("td", {{"class", "num"}}, fmt_count(benches));
        w_.element("td",
                   {{"class", errors != 0 ? "num verdict-regression"
                                          : "num"}},
                   fmt_count(errors));
        w_.close();  // tr
      }
      w_.close().close();  // tbody, table
      hw_table(loaded);
    }
    for (const std::string& problem : loaded.problems) {
      w_.element("p", {{"class", "problems"}}, "\xE2\x9A\xA0 " + problem);
    }
    w_.close();  // section
  }

  /// Hardware-counter attribution per report.  Degraded machines render
  /// the reason, never zeros masquerading as measurements; reports from
  /// before the hw block get an em-dash row.
  void hw_table(const LoadResult& loaded) {
    bool any_hw_block = false;
    for (const LoadedReport& report : loaded.reports) {
      const json::Value* hw = report.doc.find("hw");
      if (hw != nullptr && hw->is_object()) any_hw_block = true;
    }
    if (!any_hw_block) {
      w_.element("p", {{"class", "note"}},
                 "No report carries an hw block (pre-hw reports).");
      return;
    }
    w_.element("p", {{"class", "legend"}},
               "Hardware counters over the whole process "
               "(perf_event_open, multiplex-scaled).");
    w_.open("table");
    w_.open("thead").open("tr");
    w_.element("th", {}, "report");
    for (const char* h :
         {"instructions", "cycles", "IPC", "cache miss", "task clock"}) {
      w_.element("th", {{"class", "num"}}, h);
    }
    w_.close().close();  // tr, thead
    w_.open("tbody");
    for (const LoadedReport& report : loaded.reports) {
      w_.open("tr");
      w_.element("td", {}, report.name);
      const json::Value* hw = report.doc.find("hw");
      const json::Value* avail =
          hw != nullptr && hw->is_object() ? hw->find("available") : nullptr;
      if (avail != nullptr && avail->is_bool() && avail->boolean) {
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(
                       number_or(*hw, "instructions", 0.0))));
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(
                       number_or(*hw, "cycles", 0.0))));
        w_.element("td", {{"class", "num"}},
                   fmt_fixed(number_or(*hw, "ipc", 0.0), 2));
        w_.element("td", {{"class", "num"}},
                   fmt_fixed(number_or(*hw, "cache_miss_rate", 0.0) * 100.0,
                             1) + " %");
        w_.element("td", {{"class", "num"}},
                   fmt_us(static_cast<std::int64_t>(
                       number_or(*hw, "task_clock_ns", 0.0) / 1000.0)));
      } else {
        const bool has_block = hw != nullptr && hw->is_object();
        w_.open("td",
                {{"class", "num verdict-neutral"}, {"colspan", "5"}});
        w_.text(has_block
                    ? "unavailable \xE2\x80\x94 " +
                          string_or(*hw, "reason", "no reason recorded")
                    : "no hw block (pre-hw report)");
        w_.close();
      }
      w_.close();  // tr
    }
    w_.close().close();  // tbody, table
  }

  // ---- telemetry timeseries --------------------------------------------

  void timeseries_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Telemetry over the run");
    if (data_.timeseries == nullptr) {
      w_.element("p", {{"class", "note"}},
                 "No telemetry series provided (set CCMX_SAMPLE_FILE on the "
                 "run, then pass --timeseries).");
      w_.close();
      return;
    }
    const TimeseriesResult& ts = *data_.timeseries;
    if (ts.rows.empty()) {
      w_.element("p", {{"class", "note"}},
                 "No " + std::string(kTimeseriesSchema) + " rows in " +
                     ts.path + ".");
      for (const std::string& problem : ts.problems) {
        w_.element("p", {{"class", "problems"}}, "\xE2\x9A\xA0 " + problem);
      }
      w_.close();
      return;
    }

    // One point per sampler tick; hw-derived series only exist where the
    // machine exposed counters (degraded runs still get the RSS line).
    std::vector<std::pair<double, double>> rss;
    std::vector<std::pair<double, double>> ipc;
    std::vector<std::pair<double, double>> insn_rate;
    for (const TimeseriesRow& row : ts.rows) {
      const double t = static_cast<double>(row.t_us) / 1e6;
      rss.emplace_back(t, static_cast<double>(row.rss_bytes) /
                              (1024.0 * 1024.0));
      if (row.hw_available && row.cycles > 0) {
        ipc.emplace_back(t, static_cast<double>(row.instructions) /
                                static_cast<double>(row.cycles));
      }
      if (row.hw_available && row.dt_us > 0) {
        insn_rate.emplace_back(
            t, static_cast<double>(row.instructions) /
                   (static_cast<double>(row.dt_us) / 1e6));
      }
    }
    std::string legend = std::to_string(ts.rows.size()) +
                         " sample(s) over " +
                         fmt_fixed(ts.span_seconds(), 2) + " s from " +
                         ts.path;
    if (ts.skipped > 0) {
      legend += " (" + std::to_string(ts.skipped) + " line(s) skipped)";
    }
    w_.element("p", {{"class", "legend"}}, legend);

    w_.open("table");
    w_.open("thead").open("tr");
    w_.element("th", {}, "metric");
    w_.element("th", {}, "over the run");
    w_.element("th", {{"class", "num"}}, "min");
    w_.element("th", {{"class", "num"}}, "max");
    w_.element("th", {{"class", "num"}}, "last");
    w_.close().close();  // tr, thead
    w_.open("tbody");
    timeseries_metric_row("RSS (MiB)", rss, 1);
    if (ipc.empty() && insn_rate.empty()) {
      w_.open("tr");
      w_.element("td", {}, "hardware counters");
      w_.open("td", {{"class", "verdict-neutral"}, {"colspan", "4"}});
      w_.text("unavailable on this machine (see the hw table above)");
      w_.close();
      w_.close();  // tr
    } else {
      timeseries_metric_row("IPC", ipc, 2);
      timeseries_metric_row("instructions / s", insn_rate, 0);
    }
    w_.close().close();  // tbody, table
    for (const std::string& problem : ts.problems) {
      w_.element("p", {{"class", "problems"}}, "\xE2\x9A\xA0 " + problem);
    }
    w_.close();  // section
  }

  void timeseries_metric_row(const std::string& label,
                             const std::vector<std::pair<double, double>>& pts,
                             int digits) {
    w_.open("tr");
    w_.element("td", {}, label);
    if (pts.empty()) {
      w_.open("td", {{"class", "verdict-neutral"}, {"colspan", "4"}});
      w_.text("\xE2\x80\x94");
      w_.close();
      w_.close();  // tr
      return;
    }
    double y_min = pts.front().second;
    double y_max = y_min;
    for (const auto& [t, y] : pts) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
    w_.open("td");
    spark(pts, label + ": " + std::to_string(pts.size()) + " samples, " +
                   fmt_fixed(y_min, digits) + " .. " +
                   fmt_fixed(y_max, digits));
    w_.close();
    w_.element("td", {{"class", "num"}}, fmt_fixed(y_min, digits));
    w_.element("td", {{"class", "num"}}, fmt_fixed(y_max, digits));
    w_.element("td", {{"class", "num"}},
               fmt_fixed(pts.back().second, digits));
    w_.close();  // tr
  }

  // ---- trajectory sparklines -------------------------------------------

  /// One 220x40 sparkline over (x, y) points with a hover title; shared
  /// by the trajectory and telemetry sections.
  void spark(const std::vector<std::pair<double, double>>& pts,
             const std::string& tooltip) {
    constexpr double kW = 220.0;
    constexpr double kH = 40.0;
    constexpr double kPad = 3.0;
    double t_min = pts.front().first;
    double t_max = pts.back().first;
    double y_min = pts.front().second;
    double y_max = y_min;
    for (const auto& [t, y] : pts) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
    const double t_span = t_max > t_min ? t_max - t_min : 1.0;
    const double y_span = y_max > y_min ? y_max - y_min : 1.0;
    const auto x_of = [&](double t) {
      return kPad + (t - t_min) / t_span * (kW - 2 * kPad);
    };
    const auto y_of = [&](double y) {
      return kH - kPad - (y - y_min) / y_span * (kH - 2 * kPad);
    };

    w_.open("svg", {{"viewBox", "0 0 220 40"},
                    {"width", "220"},
                    {"height", "40"},
                    {"role", "img"}});
    w_.element("title", {}, tooltip);
    // Hairline baseline so a flat series still reads as "on the floor".
    w_.leaf("line", {{"x1", fmt_svg(kPad)},
                     {"y1", fmt_svg(kH - kPad)},
                     {"x2", fmt_svg(kW - kPad)},
                     {"y2", fmt_svg(kH - kPad)},
                     {"stroke", "var(--axis)"},
                     {"stroke-width", "1"}});
    std::string points_attr;
    for (const auto& [t, y] : pts) {
      if (!points_attr.empty()) points_attr += ' ';
      points_attr += fmt_svg(x_of(t)) + ',' + fmt_svg(y_of(y));
    }
    if (pts.size() == 1) {
      // A polyline needs two points; a single run renders as its dot.
    } else {
      w_.leaf("polyline", {{"points", points_attr},
                           {"fill", "none"},
                           {"stroke", "var(--s1)"},
                           {"stroke-width", "2"},
                           {"stroke-linecap", "round"},
                           {"stroke-linejoin", "round"}});
    }
    w_.leaf("circle", {{"cx", fmt_svg(x_of(pts.back().first))},
                       {"cy", fmt_svg(y_of(pts.back().second))},
                       {"r", "3"},
                       {"fill", "var(--s1)"}});
    w_.close();  // svg
  }

  void sparkline(const TrajectorySeries& series) {
    double y_min = series.points.front().second;
    double y_max = y_min;
    for (const auto& [t, y] : series.points) {
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
    spark(series.points,
          series.report + "/" + series.benchmark + ": " +
              std::to_string(series.points.size()) + " runs, cpu_time " +
              fmt_fixed(y_min, 3) + " .. " + fmt_fixed(y_max, 3));
  }

  void trajectory_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Perf trajectory");
    if (data_.series == nullptr || data_.series->series.empty()) {
      w_.element("p", {{"class", "note"}},
                 "No trajectory provided (run ccmx_insight trajectory, then "
                 "pass --trajectory).");
      w_.close();
      return;
    }
    // Trend fits index, to annotate each sparkline with its drift.
    std::map<std::pair<std::string, std::string>, const TrendFit*> fit_of;
    if (data_.trend != nullptr) {
      for (const TrendFit& fit : data_.trend->fits) {
        fit_of[{fit.report, fit.benchmark}] = &fit;
      }
    }
    w_.element("p", {{"class", "legend"}},
               "cpu_time per benchmark across the committed trajectory; "
               "slope from ccmx_insight trend (positive = getting slower).");
    w_.open("table");
    w_.open("thead").open("tr");
    w_.element("th", {}, "report / benchmark");
    w_.element("th", {}, "cpu_time over runs");
    w_.element("th", {{"class", "num"}}, "runs");
    w_.element("th", {{"class", "num"}}, "last");
    w_.element("th", {{"class", "num"}}, "slope %/day");
    w_.element("th", {{"class", "num"}}, "r\xC2\xB2");
    w_.close().close();  // tr, thead
    w_.open("tbody");
    for (const TrajectorySeries& series : data_.series->series) {
      w_.open("tr");
      w_.element("td", {}, series.report + " / " + series.benchmark);
      w_.open("td");
      sparkline(series);
      w_.close();
      w_.element("td", {{"class", "num"}},
                 std::to_string(series.points.size()));
      w_.element("td", {{"class", "num"}},
                 fmt_fixed(series.points.back().second, 3));
      const auto fit_it = fit_of.find({series.report, series.benchmark});
      if (fit_it == fit_of.end()) {
        w_.element("td", {{"class", "num verdict-neutral"}},
                   "\xE2\x80\x94");
        w_.element("td", {{"class", "num verdict-neutral"}},
                   "\xE2\x80\x94");
      } else {
        const TrendFit& fit = *fit_it->second;
        const double rel_pct = fit.rel_slope_per_day * 100.0;
        const bool worse = rel_pct > 0.0;
        // Sign + arrow + class: the direction never rides on color alone.
        w_.element(
            "td",
            {{"class", std::string("num ") + (worse ? "verdict-regression"
                                                    : "verdict-improvement")}},
            (worse ? "\xE2\x96\xB2 +" : "\xE2\x96\xBC ") +
                fmt_fixed(rel_pct, 2));
        w_.element("td", {{"class", "num"}}, fmt_fixed(fit.r2, 2));
      }
      w_.close();  // tr
    }
    w_.close().close();  // tbody, table
    if (data_.trend != nullptr && !data_.trend->thin_series.empty()) {
      w_.element("p", {{"class", "note"}},
                 std::to_string(data_.trend->thin_series.size()) +
                     " series with too few runs to fit a trend.");
    }
    w_.close();  // section
  }

  // ---- bench diff verdicts ---------------------------------------------

  void diff_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Perf gate (bench diff)");
    if (data_.diff == nullptr) {
      w_.element("p", {{"class", "note"}},
                 "No bench diff provided (pass --diff bench_diff.json).");
      w_.close();
      return;
    }
    const json::Value& diff = *data_.diff;
    w_.element("p", {{"class", "legend"}},
               string_or(diff, "baseline_dir", "?") + "  \xE2\x86\x92  " +
                   string_or(diff, "candidate_dir", "?"));
    const json::Value* benchmarks = diff.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array() ||
        benchmarks->array.empty()) {
      w_.element("p", {{"class", "note"}}, "The diff holds no benchmarks.");
      w_.close();
      return;
    }
    w_.open("table");
    w_.open("thead").open("tr");
    w_.element("th", {}, "report / benchmark");
    w_.element("th", {{"class", "num"}}, "baseline cpu");
    w_.element("th", {{"class", "num"}}, "candidate cpu");
    w_.element("th", {{"class", "num"}}, "ratio");
    w_.element("th", {}, "verdict");
    w_.close().close();  // tr, thead
    w_.open("tbody");
    for (const json::Value& row : benchmarks->array) {
      if (!row.is_object()) continue;
      w_.open("tr");
      w_.element("td", {},
                 string_or(row, "report", "?") + " / " +
                     string_or(row, "benchmark", "?"));
      w_.element("td", {{"class", "num"}},
                 fmt_fixed(number_or(row, "baseline_cpu", 0.0), 3));
      w_.element("td", {{"class", "num"}},
                 fmt_fixed(number_or(row, "candidate_cpu", 0.0), 3));
      const double ratio = number_or(row, "ratio", 0.0);
      w_.element("td", {{"class", "num"}},
                 ratio > 0.0 ? fmt_fixed(ratio, 3)
                             : std::string("\xE2\x80\x94"));
      const std::string verdict = string_or(row, "verdict", "?");
      std::string cls = "verdict-neutral";
      std::string marker;
      if (verdict == "regression") {
        cls = "verdict-regression";
        marker = "\xE2\x96\xB2 ";
      } else if (verdict == "improvement") {
        cls = "verdict-improvement";
        marker = "\xE2\x96\xBC ";
      }
      w_.element("td", {{"class", cls}}, marker + verdict);
      w_.close();  // tr
    }
    w_.close().close();  // tbody, table
    w_.close();          // section
  }

  // ---- architecture ------------------------------------------------------

  void arch_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Architecture (include graph)");
    if (data_.arch == nullptr) {
      w_.element("p", {{"class", "note"}},
                 "No architecture report provided (pass --arch "
                 "arch_report.json from ccmx_lint arch --json).");
      w_.close();
      return;
    }
    const json::Value& arch = *data_.arch;
    w_.element(
        "p", {{"class", "legend"}},
        fmt_count(static_cast<std::uint64_t>(
            number_or(arch, "files_scanned", 0.0))) +
            " file(s), " +
            fmt_count(static_cast<std::uint64_t>(
                number_or(arch, "include_edges", 0.0))) +
            " include edge(s); modules sorted by declared layer.");
    const json::Value* modules = arch.find("modules");
    if (modules != nullptr && modules->is_array() &&
        !modules->array.empty()) {
      w_.open("table");
      w_.open("thead").open("tr");
      w_.element("th", {}, "module");
      w_.element("th", {{"class", "num"}}, "layer");
      w_.element("th", {{"class", "num"}}, "files");
      w_.element("th", {{"class", "num"}}, "fan-out");
      w_.element("th", {{"class", "num"}}, "fan-in");
      w_.element("th", {}, "depends on");
      w_.close().close();  // tr, thead
      w_.open("tbody");
      for (const json::Value& row : modules->array) {
        if (!row.is_object()) continue;
        w_.open("tr");
        w_.element("td", {}, string_or(row, "name", "?"));
        w_.element("td", {{"class", "num"}},
                   fmt_fixed(number_or(row, "layer", -1.0), 0));
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(
                       number_or(row, "files", 0.0))));
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(
                       number_or(row, "fan_out", 0.0))));
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(
                       number_or(row, "fan_in", 0.0))));
        std::string deps;
        const json::Value* dep_list = row.find("deps");
        if (dep_list != nullptr && dep_list->is_array()) {
          for (const json::Value& dep : dep_list->array) {
            if (!dep.is_string()) continue;
            if (!deps.empty()) deps += ", ";
            deps += dep.string;
          }
        }
        w_.element("td", {},
                   deps.empty() ? std::string("\xE2\x80\x94") : deps);
        w_.close();  // tr
      }
      w_.close().close();  // tbody, table
    }
    const json::Value* findings = arch.find("findings");
    const std::size_t open_count =
        findings != nullptr && findings->is_array() ? findings->array.size()
                                                    : 0;
    if (open_count == 0) {
      w_.element("p", {{"class", "note"}},
                 "No open architecture violations \xE2\x80\x94 the include "
                 "graph matches the declared layering.");
    } else {
      w_.element("p", {{"class", "legend verdict-regression"}},
                 "\xE2\x96\xB2 " + std::to_string(open_count) +
                     " open violation(s):");
      w_.open("ul", {{"class", "problems"}});
      for (const json::Value& f : findings->array) {
        if (!f.is_object()) continue;
        w_.element("li", {},
                   string_or(f, "file", "?") + ":" +
                       fmt_fixed(number_or(f, "line", 0.0), 0) + " [" +
                       string_or(f, "rule", "?") + "] " +
                       string_or(f, "message", ""));
      }
      w_.close();  // ul
    }
    w_.close();  // section
  }

  // ---- channel traffic --------------------------------------------------

  void traffic_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Channel traffic");
    if (data_.trace == nullptr || data_.trace->send_events == 0) {
      w_.element("p", {{"class", "note"}},
                 "No channel trace provided (pass --trace run.trace.jsonl).");
      w_.close();
      return;
    }
    const ChannelTrace& trace = *data_.trace;
    const auto tile = [&](std::string_view value, std::string_view key) {
      w_.open("div", {{"class", "tile"}});
      w_.element("div", {{"class", "v"}}, value);
      w_.element("div", {{"class", "k"}}, key);
      w_.close();
    };
    w_.open("div", {{"class", "tiles"}});
    tile(fmt_count(trace.total_bits()), "bits on the wire");
    tile(fmt_count(trace.send_events), "messages");
    tile(fmt_count(trace.total_rounds()), "rounds");
    tile(fmt_count(trace.channels.size()), "protocol executions");
    tile(fmt_count(trace.agents[0].bits), "agent0 bits");
    tile(fmt_count(trace.agents[1].bits), "agent1 bits");
    w_.close();  // tiles

    // Bits per round, split by speaking agent — the message-passing
    // lens: rounds 1..8 match the comm.bits.roundN counters, deeper
    // rounds fold into the same overflow bucket the counters use.
    constexpr std::size_t kRounds = 8;
    std::uint64_t by_round[2][kRounds + 1] = {};
    for (const ChannelStats& ch : trace.channels) {
      for (const RoundStats& round : ch.rounds) {
        const std::size_t bucket =
            round.round >= 1 && round.round <= kRounds ? round.round - 1
                                                       : kRounds;
        by_round[round.speaker][bucket] += round.bits;
      }
    }
    std::size_t buckets = 0;
    std::uint64_t tallest = 0;
    for (std::size_t b = 0; b <= kRounds; ++b) {
      const std::uint64_t total = by_round[0][b] + by_round[1][b];
      if (total > 0) buckets = b + 1;
      tallest = std::max(tallest, total);
    }
    if (buckets == 0 || tallest == 0) {
      w_.close();  // section
      return;
    }

    w_.element("h2", {}, "Bits per round");
    w_.open("p", {{"class", "legend"}});
    w_.open("span", {{"class", "item"}});
    w_.leaf("span",
            {{"class", "chip"}, {"style", "background:var(--s1)"}});
    w_.text("agent0");
    w_.close();
    w_.open("span", {{"class", "item"}});
    w_.leaf("span",
            {{"class", "chip"}, {"style", "background:var(--s2)"}});
    w_.text("agent1");
    w_.close();
    w_.close();  // p.legend

    constexpr double kH = 130.0;
    constexpr double kBase = 110.0;  // baseline y
    constexpr double kBarW = 34.0;
    constexpr double kGap = 14.0;
    const double width = 8.0 + static_cast<double>(buckets) * (kBarW + kGap);
    w_.open("svg", {{"viewBox",
                     "0 0 " + fmt_svg(width) + " " + fmt_svg(kH)},
                    {"width", fmt_svg(width)},
                    {"height", fmt_svg(kH)},
                    {"role", "img"}});
    w_.element("title", {}, "bits per round, split by speaking agent");
    w_.leaf("line", {{"x1", "4"},
                     {"y1", fmt_svg(kBase)},
                     {"x2", fmt_svg(width - 4.0)},
                     {"y2", fmt_svg(kBase)},
                     {"stroke", "var(--axis)"},
                     {"stroke-width", "1"}});
    for (std::size_t b = 0; b < buckets; ++b) {
      const double x = 8.0 + static_cast<double>(b) * (kBarW + kGap);
      double y = kBase;
      // Stacked segments, 2px surface gap between them (skill: spacers).
      for (unsigned agent = 0; agent < 2; ++agent) {
        const std::uint64_t bits = by_round[agent][b];
        if (bits == 0) continue;
        const double h = std::max(
            2.0, static_cast<double>(bits) /
                     static_cast<double>(tallest) * (kBase - 24.0));
        y -= h;
        w_.open("rect", {{"x", fmt_svg(x)},
                         {"y", fmt_svg(y)},
                         {"width", fmt_svg(kBarW)},
                         {"height", fmt_svg(h)},
                         {"rx", "2"},
                         {"fill", series_var(agent)},
                         {"stroke", "var(--surface)"},
                         {"stroke-width", "2"}});
        w_.element("title", {},
                   "round " + (b < kRounds ? std::to_string(b + 1)
                                           : std::string("overflow")) +
                       ", agent" + std::to_string(agent) + ": " +
                       fmt_count(bits) + " bits");
        w_.close();  // rect
      }
      const std::uint64_t total = by_round[0][b] + by_round[1][b];
      w_.element("text",
                 {{"x", fmt_svg(x + kBarW / 2)},
                  {"y", fmt_svg(y - 6.0)},
                  {"text-anchor", "middle"},
                  {"fill", "var(--ink2)"}},
                 fmt_count(total));
      w_.element("text",
                 {{"x", fmt_svg(x + kBarW / 2)},
                  {"y", fmt_svg(kBase + 14.0)},
                  {"text-anchor", "middle"},
                  {"fill", "var(--muted)"}},
                 b < kRounds ? "r" + std::to_string(b + 1)
                             : std::string("overflow"));
    }
    w_.close();  // svg
    w_.close();  // section
  }

  // ---- trace pipeline ---------------------------------------------------

  /// Health of the async event pipeline: per-report emitted/dropped
  /// conservation and self-overhead (obs.trace.* / obs.overhead.*
  /// counters), plus the streaming reader's own stats for the rendered
  /// trace.  Dropped events are never silent — this is where they show.
  void pipeline_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Trace pipeline");

    const auto counter = [](const json::Value& doc, std::string_view name) {
      const json::Value* counters = doc.find("counters");
      if (counters == nullptr || !counters->is_object()) return -1.0;
      return number_or(*counters, name, -1.0);
    };
    std::vector<const LoadedReport*> piped;
    for (const LoadedReport& report : data_.reports->reports) {
      if (counter(report.doc, "obs.trace.emitted") >= 0.0) {
        piped.push_back(&report);
      }
    }
    if (piped.empty() && data_.trace_stats == nullptr) {
      w_.element("p", {{"class", "note"}},
                 "No report carries obs.trace.* counters and no streamed "
                 "trace was read.");
      w_.close();
      return;
    }

    if (data_.trace_stats != nullptr) {
      const TraceReadStats& stats = *data_.trace_stats;
      const auto tile = [&](std::string_view value, std::string_view key) {
        w_.open("div", {{"class", "tile"}});
        w_.element("div", {{"class", "v"}}, value);
        w_.element("div", {{"class", "k"}}, key);
        w_.close();
      };
      w_.open("div", {{"class", "tiles"}});
      tile(fmt_count(stats.lines), "trace lines read");
      tile(fmt_count(stats.gap_events), "tolerated gaps");
      tile(fmt_count(stats.gapped_channels), "gapped channels");
      tile(stats.truncated_tail ? "torn" : "clean", "final line");
      w_.close();  // tiles
    }

    if (!piped.empty()) {
      w_.open("table");
      w_.open("thead").open("tr");
      w_.element("th", {}, "report");
      w_.element("th", {{"class", "num"}}, "emitted");
      w_.element("th", {{"class", "num"}}, "dropped");
      w_.element("th", {{"class", "num"}}, "open failed");
      w_.element("th", {{"class", "num"}}, "ns / emit");
      w_.element("th", {{"class", "num"}}, "drain ms");
      w_.element("th", {{"class", "num"}}, "flush ms");
      w_.element("th", {}, "verdict");
      w_.close().close();  // tr, thead
      w_.open("tbody");
      for (const LoadedReport* report : piped) {
        const double emitted = counter(report->doc, "obs.trace.emitted");
        const double dropped =
            std::max(0.0, counter(report->doc, "obs.trace.dropped"));
        const double open_failed =
            std::max(0.0, counter(report->doc, "obs.trace.open_failed"));
        const double emit_ns = counter(report->doc, "obs.overhead.emit_ns");
        const double drain_ns = counter(report->doc, "obs.overhead.drain_ns");
        const double flush_ns = counter(report->doc, "obs.overhead.flush_ns");
        w_.open("tr");
        w_.element("td", {}, report->name);
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(emitted)));
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(dropped)));
        w_.element("td", {{"class", "num"}},
                   fmt_count(static_cast<std::uint64_t>(open_failed)));
        w_.element("td", {{"class", "num"}},
                   emit_ns >= 0.0 && emitted > 0.0
                       ? fmt_fixed(emit_ns / emitted, 0)
                       : std::string("\xE2\x80\x94"));
        w_.element("td", {{"class", "num"}},
                   drain_ns >= 0.0 ? fmt_fixed(drain_ns * 1e-6, 2)
                                   : std::string("\xE2\x80\x94"));
        w_.element("td", {{"class", "num"}},
                   flush_ns >= 0.0 ? fmt_fixed(flush_ns * 1e-6, 2)
                                   : std::string("\xE2\x80\x94"));
        const bool truncated = dropped > 0.0 || open_failed > 0.0;
        w_.element("td",
                   {{"class", truncated ? "verdict-regression"
                                        : "verdict-improvement"}},
                   truncated ? "\xE2\x96\xB2 truncated" : "lossless");
        w_.close();  // tr
      }
      w_.close().close();  // tbody, table
    }
    w_.close();  // section
  }

  // ---- span-tree flame view --------------------------------------------

  void flame_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Span tree (flame view)");
    if (data_.forest == nullptr ||
        (data_.forest->nodes.empty() && data_.forest->legacy_spans == 0)) {
      w_.element("p", {{"class", "note"}},
                 "No spans in the trace (run with CCMX_TRACE=1 and "
                 "CCMX_TRACE_FILE set).");
      w_.close();
      return;
    }
    const SpanForest& forest = *data_.forest;

    // Fixed categorical assignment: slots go to the biggest span names
    // by total duration, in one deterministic pass; the rest share the
    // muted tone (identity still carried by label + tooltip).
    std::map<std::string, std::int64_t> total_by_name;
    std::map<std::string, std::int64_t> self_by_name;
    std::map<std::string, std::uint64_t> count_by_name;
    for (const SpanNode& node : forest.nodes) {
      const SpanEvent& span = forest.spans[node.span];
      total_by_name[span.name] += span.dur_us;
      self_by_name[span.name] += node.self_us;
      count_by_name[span.name] += 1;
    }
    std::vector<std::pair<std::string, std::int64_t>> ranked(
        total_by_name.begin(), total_by_name.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    std::map<std::string, std::size_t> slot_of;
    for (std::size_t i = 0;
         i < ranked.size() && i < kCategoricalSlots; ++i) {
      slot_of[ranked[i].first] = i;
    }
    const auto fill_of = [&](const std::string& name) {
      const auto it = slot_of.find(name);
      return it != slot_of.end() ? series_var(it->second)
                                 : std::string("var(--other)");
    };

    w_.open("p", {{"class", "legend"}});
    for (std::size_t i = 0; i < ranked.size() && i < kCategoricalSlots;
         ++i) {
      w_.open("span", {{"class", "item"}});
      w_.leaf("span", {{"class", "chip"},
                       {"style", "background:" + series_var(i)}});
      w_.text(ranked[i].first);
      w_.close();
    }
    if (ranked.size() > kCategoricalSlots) {
      w_.open("span", {{"class", "item"}});
      w_.leaf("span", {{"class", "chip"},
                       {"style", "background:var(--other)"}});
      w_.text("other");
      w_.close();
    }
    w_.close();  // p.legend

    for (const ThreadSpans& thread : forest.threads) {
      flame_svg(forest, thread, fill_of);
    }

    if (forest.legacy_spans > 0) {
      w_.element("p", {{"class", "note"}},
                 std::to_string(forest.legacy_spans) +
                     " legacy (pre-span-tree) span event(s) without tree "
                     "structure.");
    }
    for (const std::string& problem : forest.problems) {
      w_.element("p", {{"class", "problems"}}, "\xE2\x9A\xA0 " + problem);
    }

    // The accessible table view behind the picture: top spans by self
    // time.
    w_.element("h2", {}, "Top spans by self time");
    std::vector<std::pair<std::string, std::int64_t>> by_self(
        self_by_name.begin(), self_by_name.end());
    std::sort(by_self.begin(), by_self.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    w_.open("table");
    w_.open("thead").open("tr");
    w_.element("th", {}, "span");
    w_.element("th", {{"class", "num"}}, "count");
    w_.element("th", {{"class", "num"}}, "total");
    w_.element("th", {{"class", "num"}}, "self");
    w_.close().close();  // tr, thead
    w_.open("tbody");
    constexpr std::size_t kTopSpans = 12;
    for (std::size_t i = 0; i < by_self.size() && i < kTopSpans; ++i) {
      const std::string& name = by_self[i].first;
      w_.open("tr");
      w_.open("td");
      w_.leaf("span", {{"class", "chip"},
                       {"style", "background:" + fill_of(name)}});
      w_.text(name);
      w_.close();
      w_.element("td", {{"class", "num"}}, fmt_count(count_by_name[name]));
      w_.element("td", {{"class", "num"}}, fmt_us(total_by_name[name]));
      w_.element("td", {{"class", "num"}}, fmt_us(by_self[i].second));
      w_.close();  // tr
    }
    w_.close().close();  // tbody, table
    if (by_self.size() > kTopSpans) {
      w_.element("p", {{"class", "note"}},
                 std::to_string(by_self.size() - kTopSpans) +
                     " further span name(s) omitted.");
    }
    w_.close();  // section
  }

  template <typename FillOf>
  void flame_svg(const SpanForest& forest, const ThreadSpans& thread,
                 const FillOf& fill_of) {
    constexpr double kW = 960.0;
    constexpr double kRow = 20.0;
    const std::int64_t t0 = thread.first_us;
    const std::int64_t span_us = std::max<std::int64_t>(
        1, thread.last_us - thread.first_us);
    std::size_t max_depth = 0;
    std::vector<std::size_t> todo = thread.roots;
    std::vector<std::size_t> order;  // preorder, for a second pass
    while (!todo.empty()) {
      const std::size_t at = todo.back();
      todo.pop_back();
      order.push_back(at);
      max_depth = std::max(max_depth, forest.nodes[at].depth);
      for (const std::size_t child : forest.nodes[at].children) {
        todo.push_back(child);
      }
    }
    const double height = (static_cast<double>(max_depth) + 1.0) * kRow + 4.0;

    w_.element("p", {{"class", "legend"}},
               "thread " + std::to_string(thread.tid) + " \xE2\x80\x94 " +
                   std::to_string(order.size()) + " span(s), " +
                   fmt_us(thread.last_us - thread.first_us) + " from " +
                   fmt_us(thread.first_us) + " after process start");
    w_.open("svg",
            {{"viewBox", "0 0 " + fmt_svg(kW) + " " + fmt_svg(height)},
             {"width", "100%"},
             {"role", "img"},
             {"preserveAspectRatio", "none"},
             {"style", "max-width:" + fmt_svg(kW) + "px;margin:4px 0 12px"}});
    w_.element("title", {},
               "span tree of thread " + std::to_string(thread.tid) +
                   " (depth grows downward)");
    for (const std::size_t at : order) {
      const SpanNode& node = forest.nodes[at];
      const SpanEvent& span = forest.spans[node.span];
      const double x =
          static_cast<double>(span.t_us - t0) / static_cast<double>(span_us) *
          (kW - 8.0) + 4.0;
      const double w = std::max(
          1.0, static_cast<double>(span.dur_us) /
                   static_cast<double>(span_us) * (kW - 8.0));
      const double y = static_cast<double>(node.depth) * kRow + 2.0;
      w_.open("rect", {{"x", fmt_svg(x)},
                       {"y", fmt_svg(y)},
                       {"width", fmt_svg(w)},
                       {"height", fmt_svg(kRow - 4.0)},
                       {"rx", "2"},
                       {"fill", fill_of(span.name)},
                       {"stroke", "var(--surface)"},
                       {"stroke-width", "1"}});
      std::string tooltip = span.name + " \xE2\x80\x94 " +
                            fmt_us(span.dur_us) + " (self " +
                            fmt_us(node.self_us) + "), span " +
                            std::to_string(span.id);
      for (const auto& [key, value] : span.args) {
        tooltip += ", " + key + "=" + value;
      }
      w_.element("title", {}, tooltip);
      w_.close();  // rect
      if (w >= 70.0) {
        w_.element("text",
                   {{"x", fmt_svg(x + 4.0)},
                    {"y", fmt_svg(y + kRow - 8.0)},
                    {"fill", "var(--surface)"}},
                   span.name);
      }
    }
    w_.close();  // svg
  }

  // ---- sampled CPU profile ---------------------------------------------

  /// The statistical twin of flame_section(): where the span flame view
  /// draws *instrumented* intervals on a time axis, this draws a classic
  /// width-proportional flame graph over the SIGPROF *samples* — the
  /// merged trie of collapsed stacks, root row on top, each rectangle's
  /// width the fraction of samples that passed through that frame.
  void profile_section() {
    w_.open("section", {{"class", "card"}});
    w_.element("h2", {}, "Sampled CPU profile (flame graph)");
    if (data_.profile == nullptr) {
      w_.element("p", {{"class", "note"}},
                 "No profile provided (run with CCMX_PROF_HZ set and pass "
                 "--profile).");
      w_.close();
      return;
    }
    const ProfileData& prof = *data_.profile;
    for (const std::string& problem : prof.problems) {
      w_.element("p", {{"class", "problems"}}, "\xE2\x9A\xA0 " + problem);
    }

    std::string ledger_line =
        fmt_count(prof.samples.size()) + " sample(s) at " +
        std::to_string(prof.hz) + " Hz via " +
        (prof.mechanism.empty() ? std::string("?") : prof.mechanism);
    if (prof.has_ledger) {
      ledger_line += " \xE2\x80\x94 ledger: captured " +
                     fmt_count(prof.ledger.captured) + ", written " +
                     fmt_count(prof.ledger.written) + ", dropped " +
                     fmt_count(prof.ledger.dropped) + ", truncated " +
                     fmt_count(prof.ledger.truncated) + ", " +
                     fmt_count(prof.ledger.threads) + " thread(s)";
    }
    w_.element("p", {{"class", "legend"}}, ledger_line);
    if (prof.has_ledger && !prof.ledger_balances()) {
      w_.element("p", {{"class", "problems"}},
                 "\xE2\x9A\xA0 conservation ledger does not balance "
                 "(captured != written + dropped) \xE2\x80\x94 samples "
                 "went missing unaccounted.");
    }
    if (prof.samples.empty()) {
      w_.element("p", {{"class", "note"}},
                 "The profile contains no samples (workload shorter than "
                 "one sampling period?).");
      w_.close();
      return;
    }

    // Categorical colors go to the hottest functions by total samples;
    // everything else shares the muted tone, identity in the tooltip.
    const std::vector<ProfileHotspot> hotspots = profile_hotspots(prof);
    std::vector<std::pair<std::string, std::uint64_t>> ranked;
    ranked.reserve(hotspots.size());
    for (const ProfileHotspot& spot : hotspots) {
      ranked.emplace_back(spot.sym, spot.total);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                               const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    std::map<std::string, std::size_t> slot_of;
    for (std::size_t i = 0; i < ranked.size() && i < kCategoricalSlots;
         ++i) {
      slot_of[ranked[i].first] = i;
    }
    const auto fill_of = [&](const std::string& name) {
      const auto it = slot_of.find(name);
      return it != slot_of.end() ? series_var(it->second)
                                 : std::string("var(--other)");
    };
    w_.open("p", {{"class", "legend"}});
    for (std::size_t i = 0; i < ranked.size() && i < kCategoricalSlots;
         ++i) {
      w_.open("span", {{"class", "item"}});
      w_.leaf("span", {{"class", "chip"},
                       {"style", "background:" + series_var(i)}});
      w_.text(ranked[i].first);
      w_.close();
    }
    if (ranked.size() > kCategoricalSlots) {
      w_.open("span", {{"class", "item"}});
      w_.leaf("span", {{"class", "chip"},
                       {"style", "background:var(--other)"}});
      w_.text("other");
      w_.close();
    }
    w_.close();  // p.legend

    profile_flame_svg(prof, fill_of);

    // The accessible table behind the picture: top functions by self
    // samples (leaf hits), with each sample counted once per function so
    // recursion cannot inflate totals.
    w_.element("h2", {}, "Top functions by self samples");
    const double total_samples = static_cast<double>(prof.samples.size());
    w_.open("table");
    w_.open("thead").open("tr");
    w_.element("th", {}, "function");
    w_.element("th", {{"class", "num"}}, "self");
    w_.element("th", {{"class", "num"}}, "total");
    w_.element("th", {{"class", "num"}}, "self %");
    w_.close().close();  // tr, thead
    w_.open("tbody");
    constexpr std::size_t kTopFunctions = 12;
    for (std::size_t i = 0; i < hotspots.size() && i < kTopFunctions; ++i) {
      const ProfileHotspot& spot = hotspots[i];
      w_.open("tr");
      w_.open("td");
      w_.leaf("span", {{"class", "chip"},
                       {"style", "background:" + fill_of(spot.sym)}});
      w_.text(spot.sym);
      w_.close();
      w_.element("td", {{"class", "num"}}, fmt_count(spot.self));
      w_.element("td", {{"class", "num"}}, fmt_count(spot.total));
      w_.element("td", {{"class", "num"}},
                 fmt_fixed(100.0 * static_cast<double>(spot.self) /
                               total_samples,
                           1) +
                     "%");
      w_.close();  // tr
    }
    w_.close().close();  // tbody, table
    if (hotspots.size() > kTopFunctions) {
      w_.element("p", {{"class", "note"}},
                 std::to_string(hotspots.size() - kTopFunctions) +
                     " further function(s) omitted.");
    }

    // Per-span attribution: join the samples' span ids against the span
    // forest rendered above, when a trace was provided too.
    if (data_.forest != nullptr && !data_.forest->spans.empty()) {
      std::map<std::uint64_t, std::string> span_names;
      for (const SpanEvent& span : data_.forest->spans) {
        span_names[span.id] = span.name;
      }
      w_.element("h2", {}, "Samples by span");
      w_.open("table");
      w_.open("thead").open("tr");
      w_.element("th", {}, "span");
      w_.element("th", {{"class", "num"}}, "samples");
      w_.element("th", {{"class", "num"}}, "share");
      w_.close().close();  // tr, thead
      w_.open("tbody");
      for (const auto& [span_id, count] : samples_by_span(prof)) {
        const auto it = span_names.find(span_id);
        std::string label =
            span_id == 0 ? std::string("(outside any span)")
            : it != span_names.end()
                ? it->second + " #" + std::to_string(span_id)
                : "span #" + std::to_string(span_id) + " (not in trace)";
        w_.open("tr");
        w_.element("td", {}, label);
        w_.element("td", {{"class", "num"}}, fmt_count(count));
        w_.element("td", {{"class", "num"}},
                   fmt_fixed(100.0 * static_cast<double>(count) /
                                 total_samples,
                             1) +
                       "%");
        w_.close();  // tr
      }
      w_.close().close();  // tbody, table
    }
    w_.close();  // section
  }

  template <typename FillOf>
  void profile_flame_svg(const ProfileData& prof, const FillOf& fill_of) {
    // Merge the collapsed stacks into a trie.  Children are keyed by
    // symbol, so recursion shows as repeated rows, like flamegraph.pl.
    struct TrieNode {
      std::string name;
      std::uint64_t count = 0;
      std::map<std::string, std::size_t> kids;
    };
    std::vector<TrieNode> trie(1);  // 0 = synthetic root ("all samples")
    std::uint64_t rooted = 0;
    std::size_t max_depth = 0;
    for (const auto& [folded, count] : collapsed_stacks(prof)) {
      std::size_t at = 0;
      trie[0].count += count;
      rooted += count;
      std::size_t depth = 0;
      std::size_t begin = 0;
      while (begin <= folded.size()) {
        const std::size_t semi = folded.find(';', begin);
        const std::string sym = folded.substr(
            begin, semi == std::string::npos ? std::string::npos
                                             : semi - begin);
        const auto [it, inserted] =
            trie[at].kids.emplace(sym, trie.size());
        if (inserted) {
          trie.push_back(TrieNode{});
          trie.back().name = sym;
        }
        at = it->second;
        trie[at].count += count;
        ++depth;
        if (semi == std::string::npos) break;
        begin = semi + 1;
      }
      max_depth = std::max(max_depth, depth);
    }
    if (rooted == 0) return;

    constexpr double kW = 960.0;
    constexpr double kRow = 18.0;
    const double height =
        (static_cast<double>(max_depth) + 1.0) * kRow + 4.0;
    w_.open("svg",
            {{"viewBox", "0 0 " + fmt_svg(kW) + " " + fmt_svg(height)},
             {"width", "100%"},
             {"role", "img"},
             {"preserveAspectRatio", "none"},
             {"style", "max-width:" + fmt_svg(kW) + "px;margin:4px 0 12px"}});
    w_.element("title", {},
               "sampled flame graph \xE2\x80\x94 width is the fraction of "
               "samples through each frame, depth grows downward");

    // Iterative preorder with explicit x offsets; subtrees narrower than
    // half a pixel are pruned (their counts still sit in every ancestor).
    struct Todo {
      std::size_t node;
      std::size_t depth;
      double x;
    };
    const double scale = (kW - 8.0) / static_cast<double>(rooted);
    std::vector<Todo> todo = {{0, 0, 4.0}};
    while (!todo.empty()) {
      const Todo item = todo.back();
      todo.pop_back();
      const TrieNode& node = trie[item.node];
      const double w = static_cast<double>(node.count) * scale;
      if (w < 0.5) continue;
      const double y = static_cast<double>(item.depth) * kRow + 2.0;
      const std::string name =
          item.node == 0 ? std::string("all samples") : node.name;
      w_.open("rect",
              {{"x", fmt_svg(item.x)},
               {"y", fmt_svg(y)},
               {"width", fmt_svg(std::max(1.0, w))},
               {"height", fmt_svg(kRow - 4.0)},
               {"rx", "2"},
               {"fill", item.node == 0 ? std::string("var(--other)")
                                       : fill_of(node.name)},
               {"stroke", "var(--surface)"},
               {"stroke-width", "1"}});
      w_.element("title", {},
                 name + " \xE2\x80\x94 " + fmt_count(node.count) +
                     " sample(s), " +
                     fmt_fixed(100.0 * static_cast<double>(node.count) /
                                   static_cast<double>(rooted),
                               1) +
                     "%");
      w_.close();  // rect
      if (w >= 70.0) {
        w_.element("text",
                   {{"x", fmt_svg(item.x + 4.0)},
                    {"y", fmt_svg(y + kRow - 7.0)},
                    {"fill", "var(--surface)"}},
                   name);
      }
      // Children left-to-right by map order (alphabetical — the layout
      // is deterministic, not time-ordered; samples have no ordering).
      double child_x = item.x;
      for (const auto& [sym, child] : node.kids) {
        todo.push_back({child, item.depth + 1, child_x});
        child_x += static_cast<double>(trie[child].count) * scale;
      }
    }
    w_.close();  // svg
  }

  // ---- data island ------------------------------------------------------

  void data_island() {
    // The machine-readable documents the page was rendered from, as one
    // JSON object.  "</" is escaped to "<\/" (identical after JSON
    // unescaping) so report contents can never terminate the script
    // element early.
    std::string payload = "{\"schema\":\"";
    payload += kDashboardDataSchema;
    payload += "\",\"reports\":[";
    bool first = true;
    for (const LoadedReport& report : data_.reports->reports) {
      if (!first) payload += ',';
      first = false;
      payload += json::render(report.doc);
    }
    payload += "]}";
    std::string safe;
    safe.reserve(payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      if (payload[i] == '<' && i + 1 < payload.size() &&
          payload[i + 1] == '/') {
        safe += "<\\/";
        ++i;
      } else {
        safe += payload[i];
      }
    }
    w_.open("script", {{"id", "ccmx-dashboard-data"},
                       {"type", "application/json"}});
    w_.raw(safe);
    w_.close();
  }

  const DashboardData& data_;
  HtmlWriter w_;
};

}  // namespace

std::string render_dashboard_html(const DashboardData& data) {
  CCMX_REQUIRE(data.reports != nullptr,
               "render_dashboard_html needs loaded reports");
  Dashboard dashboard(data);
  return dashboard.render();
}

}  // namespace ccmx::obs
