// Self-contained HTML dashboard over the observability artifacts.
//
// render_dashboard_html() turns run reports, the perf trajectory, a
// bench diff, and a channel trace into ONE dependency-free HTML file:
// every chart is inline SVG rendered here (sparklines per benchmark,
// per-round/per-agent traffic bars, a span-tree flame view, a sampled
// CPU flame graph over the profiler's collapsed stacks), every color
// and font is inline CSS, and there is no JavaScript and no network
// fetch of any kind — the file opens identically from a CI artifact, an
// email attachment, or file://.  The run-report documents the page was
// rendered from are embedded verbatim in a
// <script type="application/json"> data island (schema
// ccmx.dashboard_data/1), so the machine-readable truth travels with the
// picture and round-trips through the strict obs::json parser.
//
// Every input except the reports is optional; absent sections render as
// a short "not provided" note so a partial dashboard is still valid.
#pragma once

#include <string>

#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/profile_reader.hpp"
#include "obs/trace_reader.hpp"

namespace ccmx::obs {

/// Inputs of one dashboard.  Non-owning: every pointer must outlive the
/// render call; nullptr simply omits that section.
struct DashboardData {
  /// Page title; empty picks a default.
  std::string title;
  /// Provenance line ("git abc123, Release, 2026-08-07"); optional.
  std::string provenance;
  /// Validated run reports (required — the dashboard's identity).
  const LoadResult* reports = nullptr;
  /// Raw trajectory series for the sparklines.
  const TrajectorySeriesResult* series = nullptr;
  /// Trend fits to annotate the sparklines with slopes.
  const TrendResult* trend = nullptr;
  /// A parsed ccmx.bench_diff/1 document for the verdict table.
  const json::Value* diff = nullptr;
  /// A parsed ccmx.arch_report/1 document (ccmx_lint arch --json) for
  /// the architecture panel: per-module fan-in/fan-out plus the open
  /// violation list.
  const json::Value* arch = nullptr;
  /// A parsed channel trace for the traffic histograms.
  const ChannelTrace* trace = nullptr;
  /// Span forest (typically build_span_forest(trace->spans)) for the
  /// flame view.
  const SpanForest* forest = nullptr;
  /// Stats from the streaming read of `trace` (lines, tolerated gaps,
  /// torn tail) for the trace-pipeline panel.
  const TraceReadStats* trace_stats = nullptr;
  /// A loaded ccmx.timeseries/1 series (background telemetry sampler)
  /// for the RSS / IPC / instruction-rate sparklines.
  const TimeseriesResult* timeseries = nullptr;
  /// A loaded ccmx.profile/1 stream (sampling CPU profiler) for the
  /// sampled flame graph next to the span-tree flame view.
  const ProfileData* profile = nullptr;
};

/// Renders the dashboard.  Throws util::contract_error when `reports` is
/// null.  The output is a complete HTML5 document with balanced tags (a
/// tag-stack writer guarantees this by construction) and zero external
/// references.
[[nodiscard]] std::string render_dashboard_html(const DashboardData& data);

}  // namespace ccmx::obs
