#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/narrow.hpp"
#include "util/require.hpp"

namespace ccmx::obs::json {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        unsigned{static_cast<unsigned char>(c)});
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::prefix() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.kind == 'o') {
    CCMX_REQUIRE(top.key_pending, "json: object value without a key");
    top.key_pending = false;
    return;  // comma was emitted with the key
  }
  if (top.saw_value) *os_ << ',';
  top.saw_value = true;
}

Writer& Writer::begin_object() {
  prefix();
  *os_ << '{';
  stack_.push_back({'o'});
  return *this;
}

Writer& Writer::end_object() {
  CCMX_REQUIRE(!stack_.empty() && stack_.back().kind == 'o' &&
                   !stack_.back().key_pending,
               "json: unbalanced end_object");
  stack_.pop_back();
  *os_ << '}';
  return *this;
}

Writer& Writer::begin_array() {
  prefix();
  *os_ << '[';
  stack_.push_back({'a'});
  return *this;
}

Writer& Writer::end_array() {
  CCMX_REQUIRE(!stack_.empty() && stack_.back().kind == 'a',
               "json: unbalanced end_array");
  stack_.pop_back();
  *os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  CCMX_REQUIRE(!stack_.empty() && stack_.back().kind == 'o' &&
                   !stack_.back().key_pending,
               "json: key outside an object");
  Frame& top = stack_.back();
  if (top.saw_value) *os_ << ',';
  top.saw_value = true;
  top.key_pending = true;
  *os_ << '"' << escape(k) << "\":";
  return *this;
}

Writer& Writer::value(std::string_view s) {
  prefix();
  *os_ << '"' << escape(s) << '"';
  return *this;
}

Writer& Writer::value(double d) {
  prefix();
  if (!std::isfinite(d)) {
    *os_ << "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *os_ << buf;
  return *this;
}

Writer& Writer::value(std::uint64_t u) {
  prefix();
  *os_ << u;
  return *this;
}

Writer& Writer::value(std::int64_t i) {
  prefix();
  *os_ << i;
  return *this;
}

Writer& Writer::value(bool b) {
  prefix();
  *os_ << (b ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  prefix();
  *os_ << "null";
  return *this;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t at = 0;

  [[noreturn]] void fail(const std::string& what) const {
    CCMX_REQUIRE(false, "json parse error at offset " + std::to_string(at) +
                            ": " + what);
    std::abort();  // unreachable (CCMX_REQUIRE throws)
  }

  void skip_ws() {
    while (at < text.size() && (text[at] == ' ' || text[at] == '\t' ||
                                text[at] == '\n' || text[at] == '\r')) {
      ++at;
    }
  }

  char peek() {
    if (at >= text.size()) fail("unexpected end of input");
    return text[at];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(at, lit.size()) != lit) return false;
    at += lit.size();
    return true;
  }

  /// A UTF-8 code unit is a raw byte pattern: values >= 0x80 are *meant*
  /// to land on (possibly negative) char — re-encoding, not numeric
  /// narrowing, so the checked helpers do not apply.
  static char u8_byte(unsigned unit) {
    return static_cast<char>(unit);  // ccmx-lint: allow(narrow)
  }

  void append_codepoint(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += u8_byte(cp);
    } else if (cp < 0x800) {
      out += u8_byte(0xC0 | (cp >> 6));
      out += u8_byte(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += u8_byte(0xE0 | (cp >> 12));
      out += u8_byte(0x80 | ((cp >> 6) & 0x3F));
      out += u8_byte(0x80 | (cp & 0x3F));
    } else {
      out += u8_byte(0xF0 | (cp >> 18));
      out += u8_byte(0x80 | ((cp >> 12) & 0x3F));
      out += u8_byte(0x80 | ((cp >> 6) & 0x3F));
      out += u8_byte(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++at;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= util::narrow_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= util::narrow_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= util::narrow_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++at;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++at;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF && consume_literal("\\u")) {
            const unsigned low = parse_hex4();
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          }
          append_codepoint(out, cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = at;
    if (peek() == '-') ++at;
    while (at < text.size() &&
           ((text[at] >= '0' && text[at] <= '9') || text[at] == '.' ||
            text[at] == 'e' || text[at] == 'E' || text[at] == '+' ||
            text[at] == '-')) {
      ++at;
    }
    const std::string token(text.substr(start, at - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("bad number");
    return value;
  }

  Value parse_value() {
    skip_ws();
    Value v;
    const char c = peek();
    if (c == '{') {
      ++at;
      v.kind = Value::Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++at;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++at;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++at;
      v.kind = Value::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++at;
        return v;
      }
      for (;;) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++at;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    v.kind = Value::Kind::kNumber;
    v.number = parse_number();
    return v;
  }
};

}  // namespace

Value parse(std::string_view text) {
  Parser parser{text};
  Value v = parser.parse_value();
  parser.skip_ws();
  CCMX_REQUIRE(parser.at == text.size(), "json: trailing garbage");
  return v;
}

namespace {

void render_to(const Value& value, std::string& out) {
  switch (value.kind) {
    case Value::Kind::kNull:
      out += "null";
      return;
    case Value::Kind::kBool:
      out += value.boolean ? "true" : "false";
      return;
    case Value::Kind::kNumber: {
      if (!std::isfinite(value.number)) {
        out += "null";  // JSON has no inf/nan (same policy as the Writer)
        return;
      }
      // Integral values render without an exponent or trailing ".0" so a
      // re-embedded counter still looks like the counter the Writer wrote.
      if (value.number == std::floor(value.number) &&
          std::abs(value.number) < 9.0e15) {
        out += std::to_string(static_cast<std::int64_t>(value.number));
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value.number);
      out += buf;
      return;
    }
    case Value::Kind::kString:
      out += '"';
      out += escape(value.string);
      out += '"';
      return;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : value.array) {
        if (!first) out += ',';
        first = false;
        render_to(item, out);
      }
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        render_to(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string render(const Value& value) {
  std::string out;
  render_to(value, out);
  return out;
}

}  // namespace ccmx::obs::json
