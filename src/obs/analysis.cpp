#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/report.hpp"
#include "obs/schemas.hpp"
#include "util/require.hpp"

namespace ccmx::obs {

namespace fs = std::filesystem;

namespace {

std::string read_whole_file(const std::string& path,
                            std::vector<std::string>& problems) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    problems.push_back(path + ": cannot open");
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

double number_or(const json::Value& doc, std::string_view key,
                 double fallback) {
  const json::Value* v = doc.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string string_or(const json::Value& doc, std::string_view key,
                      std::string_view fallback) {
  const json::Value* v = doc.find(key);
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

/// candidate/baseline classified against a symmetric relative tolerance;
/// `lower_is_better` is true for times/RSS, false never so far but kept
/// explicit at the call sites via how ratio is read.
Verdict classify(double baseline, double candidate, double rel_tol) {
  if (baseline <= 0.0) {
    // Degenerate baseline (zero counter, zero time): any nonzero
    // candidate is a change we cannot express as a ratio; flag only a
    // real appearance.
    return candidate <= 0.0 ? Verdict::kWithinNoise : Verdict::kRegression;
  }
  const double ratio = candidate / baseline;
  if (ratio > 1.0 + rel_tol) return Verdict::kRegression;
  if (ratio < 1.0 - rel_tol) return Verdict::kImprovement;
  return Verdict::kWithinNoise;
}

double safe_ratio(double baseline, double candidate) {
  return baseline > 0.0 ? candidate / baseline : 0.0;
}

/// Pulls "counters" into an ordered map (empty when absent/untraced).
std::map<std::string, double> counter_map(const json::Value& doc) {
  std::map<std::string, double> out;
  const json::Value* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) return out;
  for (const auto& [name, value] : counters->object) {
    if (value.is_number()) out[name] = value.number;
  }
  return out;
}

struct BenchRow {
  double cpu_time = 0.0;
  std::int64_t iterations = 0;
  std::string time_unit;
  /// Per-row hardware attribution; absent (has_hw=false) on reports from
  /// degraded machines or predating hw counters — the differ degrades to
  /// "no hw verdict" for such rows instead of erroring.
  bool has_hw = false;
  double insn_per_iter = 0.0;
  double ipc = 0.0;
};

std::map<std::string, BenchRow> benchmark_map(const json::Value& doc) {
  std::map<std::string, BenchRow> out;
  const json::Value* benches = doc.find("benchmarks");
  if (benches == nullptr || !benches->is_array()) return out;
  for (const json::Value& run : benches->array) {
    if (!run.is_object()) continue;
    const json::Value* name = run.find("name");
    if (name == nullptr || !name->is_string()) continue;
    // Errored runs carry no meaningful timing; exclude them from the
    // timing diff (they are caught by bench_main's nonzero exit).
    if (const json::Value* err = run.find("error");
        err != nullptr && err->is_bool() && err->boolean) {
      continue;
    }
    BenchRow row;
    row.cpu_time = number_or(run, "cpu_time", 0.0);
    row.iterations =
        static_cast<std::int64_t>(number_or(run, "iterations", 0.0));
    row.time_unit = string_or(run, "time_unit", "ns");
    if (const json::Value* hw = run.find("hw");
        hw != nullptr && hw->is_object()) {
      const json::Value* avail = hw->find("available");
      if (avail != nullptr && avail->is_bool() && avail->boolean) {
        row.insn_per_iter = number_or(run, "insn_per_iteration", 0.0);
        if (row.insn_per_iter <= 0.0 && row.iterations > 0) {
          row.insn_per_iter = number_or(*hw, "instructions", 0.0) /
                              static_cast<double>(row.iterations);
        }
        row.ipc = number_or(*hw, "ipc", 0.0);
        row.has_hw = row.insn_per_iter > 0.0;
      }
    }
    out[name->string] = row;
  }
  return out;
}

void write_verdict_counts(json::Writer& w, const BenchDiff& diff) {
  w.key("summary").begin_object();
  w.key("regressions")
      .value(static_cast<std::uint64_t>(diff.count(Verdict::kRegression)));
  w.key("improvements")
      .value(static_cast<std::uint64_t>(diff.count(Verdict::kImprovement)));
  w.key("within_noise")
      .value(static_cast<std::uint64_t>(diff.count(Verdict::kWithinNoise)));
  w.key("low_iterations")
      .value(static_cast<std::uint64_t>(diff.count(Verdict::kLowIterations)));
  w.key("only_baseline")
      .value(static_cast<std::uint64_t>(diff.count(Verdict::kOnlyBaseline)));
  w.key("only_candidate")
      .value(static_cast<std::uint64_t>(diff.count(Verdict::kOnlyCandidate)));
  w.key("cpu_regression").value(diff.has_cpu_regression());
  w.key("insn_regression").value(diff.has_insn_regression());
  w.end_object();
}

std::string fmt_ratio(double ratio) {
  if (ratio <= 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ratio);
  return buf;
}

std::string fmt_num(double v) {
  char buf[48];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

std::string_view verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::kWithinNoise: return "within_noise";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kRegression: return "regression";
    case Verdict::kLowIterations: return "low_iterations";
    case Verdict::kOnlyBaseline: return "only_baseline";
    case Verdict::kOnlyCandidate: return "only_candidate";
  }
  return "unknown";
}

std::vector<std::string> load_report_file(const std::string& path,
                                          LoadedReport& out) {
  std::vector<std::string> problems;
  const std::string text = read_whole_file(path, problems);
  if (!problems.empty()) return problems;
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const util::contract_error& e) {
    problems.push_back(path + ": " + e.what());
    return problems;
  }
  for (const std::string& problem : validate_run_report(doc)) {
    problems.push_back(path + ": " + problem);
  }
  if (!problems.empty()) return problems;
  out.path = path;
  out.name = string_or(doc, "name", "");
  out.git_sha = string_or(doc, "git_sha", "unknown");
  out.build_type = string_or(doc, "build_type", "unknown");
  out.unix_time = static_cast<std::int64_t>(number_or(doc, "unix_time", 0.0));
  out.wall_seconds = number_or(doc, "wall_seconds", 0.0);
  out.cpu_seconds = number_or(doc, "cpu_seconds", 0.0);
  out.max_rss_bytes =
      static_cast<std::int64_t>(number_or(doc, "max_rss_bytes", 0.0));
  out.doc = std::move(doc);
  return problems;
}

LoadResult load_report_dir(const std::string& dir) {
  LoadResult result;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return result;
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 && file.size() > 5 &&
        file.substr(file.size() - 5) == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    LoadedReport report;
    std::vector<std::string> problems = load_report_file(path, report);
    if (problems.empty()) {
      result.reports.push_back(std::move(report));
    } else {
      result.problems.insert(result.problems.end(), problems.begin(),
                             problems.end());
    }
  }
  std::sort(result.reports.begin(), result.reports.end(),
            [](const LoadedReport& a, const LoadedReport& b) {
              return a.name < b.name;
            });
  return result;
}

std::size_t BenchDiff::count(Verdict v) const noexcept {
  std::size_t n = 0;
  for (const BenchmarkDelta& d : benchmarks) n += d.verdict == v;
  for (const CounterDelta& d : counters) n += d.verdict == v;
  for (const InsnDelta& d : insn) n += d.verdict == v;
  for (const RssDelta& d : rss) n += d.verdict == v;
  return n;
}

bool BenchDiff::has_cpu_regression() const noexcept {
  return std::any_of(benchmarks.begin(), benchmarks.end(),
                     [](const BenchmarkDelta& d) {
                       return d.verdict == Verdict::kRegression;
                     });
}

bool BenchDiff::has_insn_regression() const noexcept {
  return std::any_of(insn.begin(), insn.end(), [](const InsnDelta& d) {
    return d.verdict == Verdict::kRegression;
  });
}

BenchDiff diff_reports(const LoadResult& baseline, const LoadResult& candidate,
                       const DiffThresholds& thresholds) {
  BenchDiff diff;
  diff.thresholds = thresholds;
  diff.problems = baseline.problems;
  diff.problems.insert(diff.problems.end(), candidate.problems.begin(),
                       candidate.problems.end());

  std::map<std::string, const LoadedReport*> base_by_name;
  std::map<std::string, const LoadedReport*> cand_by_name;
  for (const LoadedReport& r : baseline.reports) base_by_name[r.name] = &r;
  for (const LoadedReport& r : candidate.reports) cand_by_name[r.name] = &r;

  // Benchmarks that exist only on one side (whole report or single row).
  const auto emit_one_sided = [&](const std::string& report,
                                  const std::map<std::string, BenchRow>& rows,
                                  Verdict verdict) {
    for (const auto& [bench, row] : rows) {
      BenchmarkDelta d;
      d.report = report;
      d.benchmark = bench;
      d.time_unit = row.time_unit;
      if (verdict == Verdict::kOnlyBaseline) {
        d.baseline_cpu = row.cpu_time;
        d.baseline_iterations = row.iterations;
      } else {
        d.candidate_cpu = row.cpu_time;
        d.candidate_iterations = row.iterations;
      }
      d.verdict = verdict;
      diff.benchmarks.push_back(std::move(d));
    }
  };

  for (const auto& [name, base] : base_by_name) {
    const auto cand_it = cand_by_name.find(name);
    if (cand_it == cand_by_name.end()) {
      emit_one_sided(name, benchmark_map(base->doc), Verdict::kOnlyBaseline);
      continue;
    }
    const LoadedReport* cand = cand_it->second;

    const std::map<std::string, BenchRow> base_rows = benchmark_map(base->doc);
    const std::map<std::string, BenchRow> cand_rows = benchmark_map(cand->doc);
    for (const auto& [bench, brow] : base_rows) {
      BenchmarkDelta d;
      d.report = name;
      d.benchmark = bench;
      d.time_unit = brow.time_unit;
      d.baseline_cpu = brow.cpu_time;
      d.baseline_iterations = brow.iterations;
      const auto crow_it = cand_rows.find(bench);
      if (crow_it == cand_rows.end()) {
        d.verdict = Verdict::kOnlyBaseline;
      } else {
        const BenchRow& crow = crow_it->second;
        d.candidate_cpu = crow.cpu_time;
        d.candidate_iterations = crow.iterations;
        d.ratio = safe_ratio(brow.cpu_time, crow.cpu_time);
        if (crow.time_unit != brow.time_unit) {
          diff.problems.push_back(name + "/" + bench + ": time_unit changed " +
                                  brow.time_unit + " -> " + crow.time_unit +
                                  "; timing not compared");
          d.verdict = Verdict::kLowIterations;
        } else if (brow.iterations < thresholds.min_iterations ||
                   crow.iterations < thresholds.min_iterations) {
          d.verdict = Verdict::kLowIterations;
        } else {
          d.verdict =
              classify(brow.cpu_time, crow.cpu_time, thresholds.cpu_rel_tol);
        }
      }
      diff.benchmarks.push_back(std::move(d));
    }
    for (const auto& [bench, crow] : cand_rows) {
      if (base_rows.count(bench) != 0) continue;
      BenchmarkDelta d;
      d.report = name;
      d.benchmark = bench;
      d.time_unit = crow.time_unit;
      d.candidate_cpu = crow.cpu_time;
      d.candidate_iterations = crow.iterations;
      d.verdict = Verdict::kOnlyCandidate;
      diff.benchmarks.push_back(std::move(d));
    }

    // Instruction counts: only rows where BOTH sides carry an available
    // hw block are judged.  One-sided hw (old baseline vs new candidate,
    // or a degraded machine on one side) degrades to "no hw verdict"
    // with a diagnostic note — never an error.
    {
      const auto any_hw = [](const std::map<std::string, BenchRow>& rows) {
        return std::any_of(rows.begin(), rows.end(), [](const auto& entry) {
          return entry.second.has_hw;
        });
      };
      const bool base_hw = any_hw(base_rows);
      const bool cand_hw = any_hw(cand_rows);
      if (base_hw != cand_hw) {
        diff.problems.push_back(
            name + ": hw counters available on only one side (degraded "
                   "machine or pre-hw report?); instruction diff skipped");
      }
      for (const auto& [bench, brow] : base_rows) {
        if (!brow.has_hw) continue;
        const auto crow_it = cand_rows.find(bench);
        if (crow_it == cand_rows.end() || !crow_it->second.has_hw) continue;
        const BenchRow& crow = crow_it->second;
        InsnDelta d;
        d.report = name;
        d.benchmark = bench;
        d.baseline_insn = brow.insn_per_iter;
        d.candidate_insn = crow.insn_per_iter;
        d.baseline_ipc = brow.ipc;
        d.candidate_ipc = crow.ipc;
        d.ratio = safe_ratio(brow.insn_per_iter, crow.insn_per_iter);
        if (brow.iterations < thresholds.min_iterations ||
            crow.iterations < thresholds.min_iterations) {
          d.verdict = Verdict::kLowIterations;
        } else {
          d.verdict = classify(brow.insn_per_iter, crow.insn_per_iter,
                               thresholds.insn_rel_tol);
        }
        diff.insn.push_back(std::move(d));
      }
    }

    // Counters: only meaningful when both runs were traced — an untraced
    // run has an empty counter map, and flagging every counter as
    // "disappeared" would be pure noise.
    const std::map<std::string, double> base_counters =
        counter_map(base->doc);
    const std::map<std::string, double> cand_counters =
        counter_map(cand->doc);
    if (base_counters.empty() != cand_counters.empty()) {
      diff.problems.push_back(
          name + ": counters present on only one side (untraced run?); "
                 "counter diff skipped");
    } else {
      for (const auto& [counter, bval] : base_counters) {
        CounterDelta d;
        d.report = name;
        d.counter = counter;
        d.baseline = bval;
        const auto cval_it = cand_counters.find(counter);
        if (cval_it == cand_counters.end()) {
          d.verdict = Verdict::kOnlyBaseline;
        } else {
          d.candidate = cval_it->second;
          d.ratio = safe_ratio(bval, d.candidate);
          d.verdict = classify(bval, d.candidate, thresholds.counter_rel_tol);
        }
        diff.counters.push_back(std::move(d));
      }
      for (const auto& [counter, cval] : cand_counters) {
        if (base_counters.count(counter) != 0) continue;
        CounterDelta d;
        d.report = name;
        d.counter = counter;
        d.candidate = cval;
        d.verdict = Verdict::kOnlyCandidate;
        diff.counters.push_back(std::move(d));
      }
    }

    if (base->max_rss_bytes > 0 && cand->max_rss_bytes > 0) {
      RssDelta d;
      d.report = name;
      d.baseline_bytes = base->max_rss_bytes;
      d.candidate_bytes = cand->max_rss_bytes;
      d.ratio = safe_ratio(static_cast<double>(base->max_rss_bytes),
                           static_cast<double>(cand->max_rss_bytes));
      d.verdict = classify(static_cast<double>(base->max_rss_bytes),
                           static_cast<double>(cand->max_rss_bytes),
                           thresholds.rss_rel_tol);
      diff.rss.push_back(std::move(d));
    }
  }
  for (const auto& [name, cand] : cand_by_name) {
    if (base_by_name.count(name) != 0) continue;
    emit_one_sided(name, benchmark_map(cand->doc), Verdict::kOnlyCandidate);
  }
  return diff;
}

std::string render_bench_diff_json(const BenchDiff& diff) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value(kBenchDiffSchema);
  w.key("git_sha").value(build_git_sha());
  w.key("baseline_dir").value(diff.baseline_dir);
  w.key("candidate_dir").value(diff.candidate_dir);
  w.key("thresholds").begin_object();
  w.key("cpu_rel_tol").value(diff.thresholds.cpu_rel_tol);
  w.key("counter_rel_tol").value(diff.thresholds.counter_rel_tol);
  w.key("rss_rel_tol").value(diff.thresholds.rss_rel_tol);
  w.key("insn_rel_tol").value(diff.thresholds.insn_rel_tol);
  w.key("min_iterations").value(diff.thresholds.min_iterations);
  w.end_object();
  write_verdict_counts(w, diff);
  w.key("benchmarks").begin_array();
  for (const BenchmarkDelta& d : diff.benchmarks) {
    w.begin_object();
    w.key("report").value(d.report);
    w.key("benchmark").value(d.benchmark);
    w.key("time_unit").value(d.time_unit);
    w.key("baseline_cpu").value(d.baseline_cpu);
    w.key("candidate_cpu").value(d.candidate_cpu);
    w.key("baseline_iterations").value(d.baseline_iterations);
    w.key("candidate_iterations").value(d.candidate_iterations);
    w.key("ratio").value(d.ratio);
    w.key("verdict").value(verdict_name(d.verdict));
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_array();
  for (const CounterDelta& d : diff.counters) {
    w.begin_object();
    w.key("report").value(d.report);
    w.key("counter").value(d.counter);
    w.key("baseline").value(d.baseline);
    w.key("candidate").value(d.candidate);
    w.key("ratio").value(d.ratio);
    w.key("verdict").value(verdict_name(d.verdict));
    w.end_object();
  }
  w.end_array();
  w.key("insn").begin_array();
  for (const InsnDelta& d : diff.insn) {
    w.begin_object();
    w.key("report").value(d.report);
    w.key("benchmark").value(d.benchmark);
    w.key("baseline_insn").value(d.baseline_insn);
    w.key("candidate_insn").value(d.candidate_insn);
    w.key("baseline_ipc").value(d.baseline_ipc);
    w.key("candidate_ipc").value(d.candidate_ipc);
    w.key("ratio").value(d.ratio);
    w.key("verdict").value(verdict_name(d.verdict));
    w.end_object();
  }
  w.end_array();
  w.key("rss").begin_array();
  for (const RssDelta& d : diff.rss) {
    w.begin_object();
    w.key("report").value(d.report);
    w.key("baseline_bytes").value(d.baseline_bytes);
    w.key("candidate_bytes").value(d.candidate_bytes);
    w.key("ratio").value(d.ratio);
    w.key("verdict").value(verdict_name(d.verdict));
    w.end_object();
  }
  w.end_array();
  w.key("problems").begin_array();
  for (const std::string& p : diff.problems) w.value(p);
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

std::string render_bench_diff_markdown(const BenchDiff& diff) {
  std::ostringstream os;
  os << "## Bench diff — " << diff.baseline_dir << " vs "
     << diff.candidate_dir << "\n\n";
  os << "- regressions: **" << diff.count(Verdict::kRegression) << "**, "
     << "improvements: " << diff.count(Verdict::kImprovement) << ", "
     << "within noise: " << diff.count(Verdict::kWithinNoise) << ", "
     << "low-iteration (ungated): " << diff.count(Verdict::kLowIterations)
     << "\n";
  os << "- thresholds: cpu ±" << fmt_num(diff.thresholds.cpu_rel_tol * 100)
     << "%, counters ±" << fmt_num(diff.thresholds.counter_rel_tol * 100)
     << "%, rss ±" << fmt_num(diff.thresholds.rss_rel_tol * 100)
     << "%, instructions ±" << fmt_num(diff.thresholds.insn_rel_tol * 100)
     << "%, min iterations " << diff.thresholds.min_iterations << "\n\n";

  const auto interesting = [](Verdict v) {
    return v != Verdict::kWithinNoise;
  };
  bool any_bench = std::any_of(
      diff.benchmarks.begin(), diff.benchmarks.end(),
      [&](const BenchmarkDelta& d) { return interesting(d.verdict); });
  if (any_bench) {
    os << "| report | benchmark | baseline cpu | candidate cpu | ratio | "
          "verdict |\n|---|---|---|---|---|---|\n";
    for (const BenchmarkDelta& d : diff.benchmarks) {
      if (!interesting(d.verdict)) continue;
      os << "| " << d.report << " | " << d.benchmark << " | "
         << fmt_num(d.baseline_cpu) << ' ' << d.time_unit << " | "
         << fmt_num(d.candidate_cpu) << ' ' << d.time_unit << " | "
         << fmt_ratio(d.ratio) << " | " << verdict_name(d.verdict) << " |\n";
    }
    os << '\n';
  } else {
    os << "All " << diff.benchmarks.size()
       << " benchmark timings within noise.\n\n";
  }

  if (diff.insn.empty()) {
    os << "Instruction counts: no benchmark carried hw counters on both "
          "sides — no hw verdict.\n\n";
  } else {
    bool any_insn = std::any_of(
        diff.insn.begin(), diff.insn.end(),
        [&](const InsnDelta& d) { return interesting(d.verdict); });
    if (any_insn) {
      os << "| report | benchmark | baseline insn/iter | candidate "
            "insn/iter | ratio | IPC (b → c) | verdict |\n"
            "|---|---|---|---|---|---|---|\n";
      for (const InsnDelta& d : diff.insn) {
        if (!interesting(d.verdict)) continue;
        os << "| " << d.report << " | " << d.benchmark << " | "
           << fmt_num(d.baseline_insn) << " | " << fmt_num(d.candidate_insn)
           << " | " << fmt_ratio(d.ratio) << " | " << fmt_num(d.baseline_ipc)
           << " → " << fmt_num(d.candidate_ipc) << " | "
           << verdict_name(d.verdict) << " |\n";
      }
      os << '\n';
    } else {
      os << "All " << diff.insn.size()
         << " instruction counts within tolerance.\n\n";
    }
  }

  bool any_counter = std::any_of(
      diff.counters.begin(), diff.counters.end(),
      [&](const CounterDelta& d) { return interesting(d.verdict); });
  if (any_counter) {
    os << "| report | counter | baseline | candidate | ratio | verdict "
          "|\n|---|---|---|---|---|---|\n";
    for (const CounterDelta& d : diff.counters) {
      if (!interesting(d.verdict)) continue;
      os << "| " << d.report << " | " << d.counter << " | "
         << fmt_num(d.baseline) << " | " << fmt_num(d.candidate) << " | "
         << fmt_ratio(d.ratio) << " | " << verdict_name(d.verdict) << " |\n";
    }
    os << '\n';
  } else if (!diff.counters.empty()) {
    os << "All " << diff.counters.size() << " counters within tolerance.\n\n";
  }

  for (const RssDelta& d : diff.rss) {
    if (!interesting(d.verdict)) continue;
    os << "- max RSS " << verdict_name(d.verdict) << " in " << d.report
       << ": " << d.baseline_bytes << " -> " << d.candidate_bytes
       << " bytes (ratio " << fmt_ratio(d.ratio) << ")\n";
  }
  for (const std::string& p : diff.problems) os << "- ⚠ " << p << '\n';
  return os.str();
}

namespace {

void check_delta_array(const json::Value& doc, std::string_view key,
                       const std::vector<const char*>& numeric_fields,
                       const std::vector<const char*>& string_fields,
                       std::vector<std::string>& problems) {
  const json::Value* arr = doc.find(key);
  if (arr == nullptr || !arr->is_array()) {
    problems.push_back("missing array \"" + std::string(key) + '"');
    return;
  }
  for (std::size_t i = 0; i < arr->array.size(); ++i) {
    const json::Value& entry = arr->array[i];
    const std::string where =
        std::string(key) + '[' + std::to_string(i) + ']';
    if (!entry.is_object()) {
      problems.push_back(where + " is not an object");
      continue;
    }
    for (const char* field : numeric_fields) {
      const json::Value* v = entry.find(field);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(where + " missing numeric \"" + field + '"');
      }
    }
    for (const char* field : string_fields) {
      const json::Value* v = entry.find(field);
      if (v == nullptr || !v->is_string()) {
        problems.push_back(where + " missing string \"" + field + '"');
      }
    }
    if (const json::Value* verdict = entry.find("verdict");
        verdict != nullptr && verdict->is_string()) {
      static constexpr std::string_view kVerdicts[] = {
          "within_noise",   "improvement",   "regression",
          "low_iterations", "only_baseline", "only_candidate"};
      if (std::find(std::begin(kVerdicts), std::end(kVerdicts),
                    verdict->string) == std::end(kVerdicts)) {
        problems.push_back(where + " has unknown verdict \"" +
                           verdict->string + '"');
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate_bench_diff(const json::Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("document is not an object");
    return problems;
  }
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    problems.emplace_back("missing string \"schema\"");
  } else if (schema->string != kBenchDiffSchema) {
    problems.push_back("unrecognized schema \"" + schema->string + '"');
  }
  const json::Value* thresholds = doc.find("thresholds");
  if (thresholds == nullptr || !thresholds->is_object()) {
    problems.emplace_back("missing object \"thresholds\"");
  } else {
    for (const char* field :
         {"cpu_rel_tol", "counter_rel_tol", "rss_rel_tol", "min_iterations"}) {
      const json::Value* v = thresholds->find(field);
      if (v == nullptr || !v->is_number()) {
        problems.push_back("thresholds missing numeric \"" +
                           std::string(field) + '"');
      }
    }
    // Optional: diffs predating the instruction gate carry no insn_rel_tol.
    if (const json::Value* v = thresholds->find("insn_rel_tol");
        v != nullptr && !v->is_number()) {
      problems.emplace_back("thresholds member \"insn_rel_tol\" has wrong type");
    }
  }
  const json::Value* summary = doc.find("summary");
  if (summary == nullptr || !summary->is_object()) {
    problems.emplace_back("missing object \"summary\"");
  } else {
    for (const char* field : {"regressions", "improvements", "within_noise",
                              "low_iterations"}) {
      const json::Value* v = summary->find(field);
      if (v == nullptr || !v->is_number()) {
        problems.push_back("summary missing numeric \"" + std::string(field) +
                           '"');
      }
    }
    const json::Value* gate = summary->find("cpu_regression");
    if (gate == nullptr || !gate->is_bool()) {
      problems.emplace_back("summary missing bool \"cpu_regression\"");
    }
    // Optional: diffs predating the instruction gate carry no insn gate.
    if (const json::Value* insn_gate = summary->find("insn_regression");
        insn_gate != nullptr && !insn_gate->is_bool()) {
      problems.emplace_back("summary member \"insn_regression\" has wrong type");
    }
  }
  check_delta_array(doc, "benchmarks",
                    {"baseline_cpu", "candidate_cpu", "baseline_iterations",
                     "candidate_iterations", "ratio"},
                    {"report", "benchmark", "verdict", "time_unit"}, problems);
  check_delta_array(doc, "counters",
                    {"baseline", "candidate", "ratio"},
                    {"report", "counter", "verdict"}, problems);
  // Optional array: diffs predating the instruction gate carry none.
  if (doc.find("insn") != nullptr) {
    check_delta_array(doc, "insn",
                      {"baseline_insn", "candidate_insn", "baseline_ipc",
                       "candidate_ipc", "ratio"},
                      {"report", "benchmark", "verdict"}, problems);
  }
  check_delta_array(doc, "rss", {"baseline_bytes", "candidate_bytes", "ratio"},
                    {"report", "verdict"}, problems);
  if (const json::Value* probs = doc.find("problems");
      probs == nullptr || !probs->is_array()) {
    problems.emplace_back("missing array \"problems\"");
  }
  return problems;
}

TrajectoryAppend append_trajectory(const LoadResult& reports,
                                   const std::string& trajectory_path) {
  TrajectoryAppend result;
  // Keys already on file: "name\nsha\nunix_time".  Unparseable lines are
  // ignored here — the trajectory is an append-only log, and dedup only
  // needs the keys it can read.
  std::vector<std::string> seen;
  {
    std::ifstream in(trajectory_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        const json::Value doc = json::parse(line);
        seen.push_back(string_or(doc, "name", "") + '\n' +
                       string_or(doc, "git_sha", "") + '\n' +
                       fmt_num(number_or(doc, "unix_time", 0.0)));
      } catch (const util::contract_error&) {
        continue;
      }
    }
  }

  const fs::path path(trajectory_path);
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path());
  }
  std::ofstream out(trajectory_path, std::ios::app);
  CCMX_REQUIRE(out.is_open(),
               "cannot open trajectory file: " + trajectory_path);
  for (const LoadedReport& report : reports.reports) {
    const std::string key = report.name + '\n' + report.git_sha + '\n' +
                            fmt_num(static_cast<double>(report.unix_time));
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      ++result.skipped;
      continue;
    }
    seen.push_back(key);
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    w.key("schema").value(kTrajectorySchema);
    w.key("name").value(report.name);
    w.key("git_sha").value(report.git_sha);
    w.key("build_type").value(report.build_type);
    w.key("unix_time").value(report.unix_time);
    w.key("wall_seconds").value(report.wall_seconds);
    w.key("cpu_seconds").value(report.cpu_seconds);
    w.key("max_rss_bytes").value(report.max_rss_bytes);
    w.key("benchmarks").begin_object();
    for (const auto& [bench, row] : benchmark_map(report.doc)) {
      w.key(bench).value(row.cpu_time);
    }
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& [counter, value] : counter_map(report.doc)) {
      w.key(counter).value(value);
    }
    w.end_object();
    w.end_object();
    out << os.str() << '\n';
    ++result.appended;
  }
  out.flush();
  CCMX_REQUIRE(out.good(), "trajectory append failed: " + trajectory_path);
  return result;
}

TrajectorySeriesResult load_trajectory_series(
    const std::string& trajectory_path) {
  TrajectorySeriesResult result;
  result.trajectory_path = trajectory_path;

  // (report, benchmark) -> [(unix_time, cpu_time)].
  std::map<std::pair<std::string, std::string>,
           std::vector<std::pair<double, double>>>
      series;
  std::ifstream in(trajectory_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const util::contract_error&) {
      ++result.skipped;
      continue;
    }
    const json::Value* benches = doc.find("benchmarks");
    const std::string name = string_or(doc, "name", "");
    if (string_or(doc, "schema", "") != kTrajectorySchema || name.empty() ||
        benches == nullptr || !benches->is_object()) {
      ++result.skipped;
      continue;
    }
    ++result.rows;
    const double t = number_or(doc, "unix_time", 0.0);
    for (const auto& [bench, value] : benches->object) {
      if (value.is_number()) {
        series[{name, bench}].emplace_back(t, value.number);
      }
    }
  }

  for (auto& [key, points] : series) {
    std::sort(points.begin(), points.end());
    TrajectorySeries one;
    one.report = key.first;
    one.benchmark = key.second;
    one.points = std::move(points);
    result.series.push_back(std::move(one));
  }
  return result;  // std::map iteration already sorted by (report, benchmark)
}

TrendResult trend_from_trajectory(const std::string& trajectory_path,
                                  std::size_t min_points) {
  TrendResult result;
  result.trajectory_path = trajectory_path;
  result.min_points = min_points;

  TrajectorySeriesResult loaded = load_trajectory_series(trajectory_path);
  result.rows = loaded.rows;
  result.skipped = loaded.skipped;

  constexpr double kSecondsPerDay = 86400.0;
  for (TrajectorySeries& one : loaded.series) {
    const std::pair<std::string, std::string> key{one.report, one.benchmark};
    std::vector<std::pair<double, double>>& points = one.points;
    const double t_first = points.front().first;
    const double t_last = points.back().first;
    if (points.size() < min_points || t_last <= t_first) {
      result.thin_series.push_back(key.first + "/" + key.second);
      continue;
    }
    const double n = static_cast<double>(points.size());
    double mean_t = 0.0;
    double mean_y = 0.0;
    for (const auto& [t, y] : points) {
      mean_t += t;
      mean_y += y;
    }
    mean_t /= n;
    mean_y /= n;
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (const auto& [t, y] : points) {
      const double dt = t - mean_t;
      const double dy = y - mean_y;
      sxx += dt * dt;
      sxy += dt * dy;
      syy += dy * dy;
    }
    TrendFit fit;
    fit.report = key.first;
    fit.benchmark = key.second;
    fit.points = points.size();
    fit.span_days = (t_last - t_first) / kSecondsPerDay;
    fit.mean_cpu = mean_y;
    fit.slope_per_day = (sxy / sxx) * kSecondsPerDay;  // sxx > 0: span > 0
    fit.rel_slope_per_day = mean_y > 0.0 ? fit.slope_per_day / mean_y : 0.0;
    // A flat series (syy == 0) is a perfect fit of a zero-slope line.
    fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
    result.fits.push_back(std::move(fit));
  }
  std::sort(result.fits.begin(), result.fits.end(),
            [](const TrendFit& a, const TrendFit& b) {
              const double da = std::fabs(a.rel_slope_per_day);
              const double db = std::fabs(b.rel_slope_per_day);
              if (da != db) return da > db;
              return std::tie(a.report, a.benchmark) <
                     std::tie(b.report, b.benchmark);
            });
  return result;
}

std::string render_trend_json(const TrendResult& trend) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value(kTrendSchema);
  w.key("trajectory").value(trend.trajectory_path);
  w.key("rows").value(std::uint64_t{trend.rows});
  w.key("skipped").value(std::uint64_t{trend.skipped});
  w.key("min_points").value(std::uint64_t{trend.min_points});
  w.key("fits").begin_array();
  for (const TrendFit& fit : trend.fits) {
    w.begin_object();
    w.key("report").value(fit.report);
    w.key("benchmark").value(fit.benchmark);
    w.key("points").value(std::uint64_t{fit.points});
    w.key("span_days").value(fit.span_days);
    w.key("mean_cpu").value(fit.mean_cpu);
    w.key("slope_per_day").value(fit.slope_per_day);
    w.key("rel_slope_per_day").value(fit.rel_slope_per_day);
    w.key("r2").value(fit.r2);
    w.end_object();
  }
  w.end_array();
  w.key("thin_series").begin_array();
  for (const std::string& name : trend.thin_series) w.value(name);
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

std::string render_trend_markdown(const TrendResult& trend) {
  std::ostringstream os;
  os << "## cpu_time drift — " << trend.trajectory_path << "\n\n"
     << trend.rows << " trajectory row(s), " << trend.fits.size()
     << " fitted series, " << trend.thin_series.size() << " below "
     << trend.min_points << " points\n\n";
  if (!trend.fits.empty()) {
    os << "| report | benchmark | points | span (d) | mean cpu | slope/day "
          "| rel/day | r² |\n"
       << "|---|---|---|---|---|---|---|---|\n";
    for (const TrendFit& fit : trend.fits) {
      os << "| " << fit.report << " | " << fit.benchmark << " | "
         << fit.points << " | " << fmt_num(fit.span_days) << " | "
         << fmt_num(fit.mean_cpu) << " | " << fmt_num(fit.slope_per_day)
         << " | " << fmt_num(fit.rel_slope_per_day) << " | "
         << fmt_num(fit.r2) << " |\n";
    }
  }
  if (!trend.thin_series.empty()) {
    os << "\nToo thin to fit: ";
    for (std::size_t i = 0; i < trend.thin_series.size(); ++i) {
      os << (i == 0 ? "" : ", ") << trend.thin_series[i];
    }
    os << "\n";
  }
  return os.str();
}

std::vector<std::string> validate_trend(const json::Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("document is not an object");
    return problems;
  }
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    problems.emplace_back("missing string \"schema\"");
  } else if (schema->string != kTrendSchema) {
    problems.push_back("schema is \"" + schema->string + "\", expected \"" +
                       std::string(kTrendSchema) + "\"");
  }
  for (const char* key : {"rows", "skipped", "min_points"}) {
    const json::Value* v = doc.find(key);
    if (v == nullptr || !v->is_number()) {
      problems.push_back(std::string("missing number \"") + key + "\"");
    }
  }
  const json::Value* fits = doc.find("fits");
  if (fits == nullptr || !fits->is_array()) {
    problems.emplace_back("missing array \"fits\"");
  } else {
    for (std::size_t i = 0; i < fits->array.size(); ++i) {
      const json::Value& fit = fits->array[i];
      const std::string where = "fits[" + std::to_string(i) + "]";
      if (!fit.is_object()) {
        problems.push_back(where + " is not an object");
        continue;
      }
      for (const char* key : {"report", "benchmark"}) {
        const json::Value* v = fit.find(key);
        if (v == nullptr || !v->is_string()) {
          problems.push_back(where + " missing string \"" + key + "\"");
        }
      }
      for (const char* key : {"points", "span_days", "mean_cpu",
                              "slope_per_day", "rel_slope_per_day", "r2"}) {
        const json::Value* v = fit.find(key);
        if (v == nullptr || !v->is_number()) {
          problems.push_back(where + " missing number \"" + key + "\"");
        }
      }
    }
  }
  if (const json::Value* thin = doc.find("thin_series");
      thin == nullptr || !thin->is_array()) {
    problems.emplace_back("missing array \"thin_series\"");
  }
  return problems;
}

}  // namespace ccmx::obs
