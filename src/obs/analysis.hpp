// Analysis half of ccmx::obs: reading what the reporting half wrote.
//
// PR 1 made every bench binary emit a ccmx.run_report/1 JSON; this module
// closes the loop.  load_report_dir() pulls a directory of BENCH_*.json
// into validated documents, diff_reports() compares two such directories
// benchmark-by-benchmark and counter-by-counter with noise-aware
// thresholds (relative tolerance plus a minimum-iterations gate, so a
// 2-iteration timing can never fail a CI run), and append_trajectory()
// accumulates one JSONL line per report in bench/out/trajectory.jsonl so
// the repo finally has a perf trajectory.  The diff is emitted both as
// machine-readable ccmx.bench_diff/1 JSON (validated by
// validate_bench_diff, gating CI) and as a human markdown summary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace ccmx::obs {

/// One validated ccmx.run_report/1 document plus the identity fields the
/// differ and the trajectory need (pre-extracted so callers do not have
/// to walk the DOM again).
struct LoadedReport {
  std::string path;        // file it came from
  std::string name;        // report "name" ("exact_cc", "ccmx_cli", ...)
  std::string git_sha;
  std::string build_type;
  std::int64_t unix_time = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::int64_t max_rss_bytes = 0;  // 0 when the report predates the field
  json::Value doc;
};

/// Result of scanning a directory for BENCH_*.json files.  Files that do
/// not parse or do not validate land in `problems` ("path: why") and are
/// excluded from `reports`; reports are sorted by name so diffs are
/// deterministic.
struct LoadResult {
  std::vector<LoadedReport> reports;
  std::vector<std::string> problems;
};

/// Loads every BENCH_*.json under `dir` (non-recursive).  A missing or
/// empty directory yields an empty result with no problems — callers
/// decide whether that is an error (CI treats a missing baseline as
/// "skip with a warning", not a failure).
[[nodiscard]] LoadResult load_report_dir(const std::string& dir);

/// Parses + validates a single report file; on success fills `out` and
/// returns empty, otherwise returns the problems.
[[nodiscard]] std::vector<std::string> load_report_file(
    const std::string& path, LoadedReport& out);

/// Noise model for the differ.
struct DiffThresholds {
  /// Relative cpu_time change beyond which a benchmark is flagged
  /// (0.20 = ±20%).  Timings on shared CI runners are noisy; keep this
  /// generous there.
  double cpu_rel_tol = 0.20;
  /// Relative change beyond which a counter is flagged.  Counters are
  /// deterministic per iteration, but google-benchmark picks iteration
  /// counts adaptively, so totals drift a few percent between identical
  /// runs; the default only flags algorithmic-scale changes.
  double counter_rel_tol = 0.25;
  /// Relative max_rss change beyond which memory is flagged.
  double rss_rel_tol = 0.30;
  /// Relative change of retired instructions per iteration beyond which
  /// a benchmark is flagged.  Instruction counts are near-deterministic
  /// (unlike cpu_time), so this gate is far tighter than the cpu one —
  /// but per-row attribution includes the calibration iterations of the
  /// batch, which adds a few percent of run-to-run wobble on top of the
  /// true count (see bench_common.hpp); CI loosens it accordingly.
  double insn_rel_tol = 0.02;
  /// A benchmark timed with fewer iterations than this (on either side)
  /// is reported but never judged: too few samples to call noise.
  std::int64_t min_iterations = 3;
};

enum class Verdict : std::uint8_t {
  kWithinNoise,    // |ratio - 1| <= tolerance
  kImprovement,    // candidate better beyond tolerance
  kRegression,     // candidate worse beyond tolerance
  kLowIterations,  // timing present but under the min-iterations gate
  kOnlyBaseline,   // benchmark/counter disappeared
  kOnlyCandidate,  // benchmark/counter is new
};

[[nodiscard]] std::string_view verdict_name(Verdict v) noexcept;

/// One benchmark compared across the two runs (keyed by report name +
/// benchmark name).
struct BenchmarkDelta {
  std::string report;     // e.g. "exact_cc"
  std::string benchmark;  // e.g. "BM_ExactCcEquality/3"
  std::string time_unit;
  double baseline_cpu = 0.0;
  double candidate_cpu = 0.0;
  std::int64_t baseline_iterations = 0;
  std::int64_t candidate_iterations = 0;
  double ratio = 0.0;  // candidate / baseline (0 when one side missing)
  Verdict verdict = Verdict::kWithinNoise;
};

/// One obs counter compared across the two runs.
struct CounterDelta {
  std::string report;
  std::string counter;  // e.g. "exact_cc.nodes"
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 0.0;
  Verdict verdict = Verdict::kWithinNoise;
};

/// Retired instructions per iteration compared across the two runs.
/// Emitted only when BOTH sides carry an available hw block for the
/// benchmark — reports from degraded machines or predating hw counters
/// simply produce no row ("no hw verdict"), never an error.
struct InsnDelta {
  std::string report;
  std::string benchmark;
  double baseline_insn = 0.0;   // instructions per iteration
  double candidate_insn = 0.0;
  double baseline_ipc = 0.0;
  double candidate_ipc = 0.0;
  double ratio = 0.0;  // candidate / baseline insn per iteration
  Verdict verdict = Verdict::kWithinNoise;
};

/// Peak-RSS comparison for one report pair (skipped when either side
/// predates max_rss_bytes).
struct RssDelta {
  std::string report;
  std::int64_t baseline_bytes = 0;
  std::int64_t candidate_bytes = 0;
  double ratio = 0.0;
  Verdict verdict = Verdict::kWithinNoise;
};

struct BenchDiff {
  DiffThresholds thresholds;
  std::string baseline_dir;
  std::string candidate_dir;
  std::vector<BenchmarkDelta> benchmarks;
  std::vector<CounterDelta> counters;
  std::vector<InsnDelta> insn;
  std::vector<RssDelta> rss;
  /// Load/validation problems from either side (diagnostic, not gating).
  std::vector<std::string> problems;

  [[nodiscard]] std::size_t count(Verdict v) const noexcept;
  /// The CI gate: true when any benchmark cpu_time regressed beyond
  /// tolerance.  Counter and RSS regressions are surfaced but advisory.
  [[nodiscard]] bool has_cpu_regression() const noexcept;
  /// The second gate: true when any benchmark's instructions-per-
  /// iteration regressed beyond insn_rel_tol.  Vacuously false when no
  /// benchmark carried hw on both sides.
  [[nodiscard]] bool has_insn_regression() const noexcept;
};

/// Diffs candidate against baseline.  Reports are matched by name;
/// benchmarks and counters by name within the matched report.
[[nodiscard]] BenchDiff diff_reports(const LoadResult& baseline,
                                     const LoadResult& candidate,
                                     const DiffThresholds& thresholds);

/// ccmx.bench_diff/1 JSON document (one object, trailing newline).
[[nodiscard]] std::string render_bench_diff_json(const BenchDiff& diff);

/// Human summary (GitHub-flavored markdown tables).
[[nodiscard]] std::string render_bench_diff_markdown(const BenchDiff& diff);

/// Schema check for a parsed ccmx.bench_diff/1 document; empty = valid.
[[nodiscard]] std::vector<std::string> validate_bench_diff(
    const json::Value& doc);

struct TrajectoryAppend {
  std::size_t appended = 0;
  std::size_t skipped = 0;  // already present (same name+git_sha+unix_time)
};

/// Appends one ccmx.trajectory/1 JSONL line per report to
/// `trajectory_path` (created along with parent directories when absent).
/// Idempotent: a report whose (name, git_sha, unix_time) already appears
/// in the file is skipped, so re-running the tool cannot duplicate rows.
TrajectoryAppend append_trajectory(const LoadResult& reports,
                                   const std::string& trajectory_path);

/// One (report, benchmark) cpu_time series extracted from a
/// ccmx.trajectory/1 JSONL file — the raw points behind both the trend
/// fits and the dashboard sparklines.
struct TrajectorySeries {
  std::string report;     // trajectory row "name" (e.g. "exact_cc")
  std::string benchmark;  // e.g. "BM_ExactCcEquality/3"
  /// (unix_time, cpu_time) sorted by time.
  std::vector<std::pair<double, double>> points;
};

struct TrajectorySeriesResult {
  std::string trajectory_path;
  std::size_t rows = 0;     // trajectory rows consumed
  std::size_t skipped = 0;  // unparseable or foreign-schema lines
  /// Sorted by (report, benchmark).
  std::vector<TrajectorySeries> series;
};

/// Extracts every per-benchmark cpu_time series from a trajectory file.
/// Malformed or foreign-schema lines are counted, not fatal; a missing
/// file yields an empty result.  trend_from_trajectory() and the HTML
/// dashboard both build on this.
[[nodiscard]] TrajectorySeriesResult load_trajectory_series(
    const std::string& trajectory_path);

/// Least-squares drift of one benchmark's cpu_time across the trajectory:
/// cpu_time ~ a + b * t fitted over every trajectory row that carries the
/// benchmark, with b rescaled to per-day units.
struct TrendFit {
  std::string report;     // trajectory row "name" (e.g. "exact_cc")
  std::string benchmark;  // e.g. "BM_ExactCcEquality/3"
  std::size_t points = 0;
  double span_days = 0.0;          // last - first unix_time
  double mean_cpu = 0.0;           // mean cpu_time over the points
  double slope_per_day = 0.0;      // cpu_time units gained per day
  double rel_slope_per_day = 0.0;  // slope_per_day / mean_cpu
  double r2 = 0.0;                 // goodness of the linear fit in [0, 1]
};

struct TrendResult {
  std::string trajectory_path;
  std::size_t rows = 0;     // trajectory rows consumed
  std::size_t skipped = 0;  // unparseable or foreign-schema lines
  std::size_t min_points = 0;
  /// Sorted by |rel_slope_per_day| descending — worst drift first.
  std::vector<TrendFit> fits;
  /// Series dropped for having fewer than min_points rows ("report/bench").
  std::vector<std::string> thin_series;
};

/// Fits every (report, benchmark) cpu_time series in a ccmx.trajectory/1
/// JSONL file.  Series with fewer than `min_points` rows, or spanning a
/// single instant, are listed in `thin_series` instead of fitted — two
/// commits cannot distinguish drift from noise.  A missing file yields an
/// empty result.
[[nodiscard]] TrendResult trend_from_trajectory(
    const std::string& trajectory_path, std::size_t min_points = 3);

/// ccmx.trend/1 JSON document (one object, trailing newline).
[[nodiscard]] std::string render_trend_json(const TrendResult& trend);

/// Human summary (GitHub-flavored markdown table, worst drift first).
[[nodiscard]] std::string render_trend_markdown(const TrendResult& trend);

/// Schema check for a parsed ccmx.trend/1 document; empty = valid.
[[nodiscard]] std::vector<std::string> validate_trend(const json::Value& doc);

}  // namespace ccmx::obs
