// Area-time tradeoff calculators (Section 1 of the paper).
//
// With C = communication complexity (Theorem 1.1: C = Theta(k n^2) for
// singularity of an n x n matrix of k-bit integers), the chip-model results
// quoted in the paper give:
//   * Thompson 1979:       A T^2   = Omega(C^2)
//   * Brent-Kung/Vuillemin/Yao:  A = Omega(C)
//   * combined family:     A T^{2a} = Omega(C^{1+a}),  0 <= a <= 1
//   * derived:             A T     = Omega(k^{3/2} n^3),  T = Omega(C / sqrt(A))
// and, in the Chazelle-Monier wire-delay model (inputs on the boundary):
//   * CM 1985:             T = Omega(n),  A T = Omega(n^2)
//   * sharpened by Thm 1.1: T = Omega(k^{1/2} n)
// These functions evaluate all of the above (with unit constants) so a
// candidate design (A, T) can be audited against every inequality.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ccmx::vlsi {

/// The communication-complexity figure the bounds are driven by (unit
/// constant): C = k n^2.
[[nodiscard]] double comm_complexity(std::size_t n, unsigned k);

struct BoundRow {
  std::string name;     // e.g. "A*T^2"
  double measured;      // value of the left-hand side for the design
  double bound;         // required lower bound (unit constants)
  double ratio;         // measured / bound  (>= 1 means consistent)
};

/// Audits a design with area `area` (unit squares) and time `time` (cycles)
/// for the singularity problem at (n, k) against every inequality above.
[[nodiscard]] std::vector<BoundRow> audit_design(std::size_t n, unsigned k,
                                                 double area, double time);

/// The paper's comparison table: our AT bound vs Chazelle-Monier's, and the
/// sharpened T bound, as functions of (n, k).
struct ComparisonRow {
  double at_ours;      // k^{3/2} n^3
  double at_cm;        // n^2
  double t_ours;       // k^{1/2} n
  double t_cm;         // n
};
[[nodiscard]] ComparisonRow bound_comparison(std::size_t n, unsigned k);

/// Smallest admissible time for a given area (T >= C / sqrt(A)).
[[nodiscard]] double min_time_for_area(std::size_t n, unsigned k, double area);

/// Smallest admissible area for a given time, combining A >= C and
/// A >= (C/T)^2.
[[nodiscard]] double min_area_for_time(std::size_t n, unsigned k, double time);

}  // namespace ccmx::vlsi
