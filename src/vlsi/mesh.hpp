// Cycle-level mesh-of-PEs simulator for singularity testing mod p.
//
// The substitution for the paper's abstract VLSI chip: an N x N grid of
// processing elements, one matrix entry per PE, executing synchronous
// Gaussian elimination over Z_p.  Every message is charged hop-by-hop, and
// the simulator meters (a) total cycles, (b) total wire-bit traffic, and
// (c) the bits crossing the vertical bisection — the quantity Thompson's
// cut argument relates to communication complexity.  An optional input
// phase streams the k-bit entries in from the west edge (the "inputs on the
// boundary" assumption of Chazelle-Monier), so the bisection necessarily
// carries at least k * N * N/2 bits, i.e. Theta(k n^2).
//
// The design is deliberately unpipelined (one elimination step at a time),
// so T = Theta(N^2) word-steps; the audit in bench_vlsi_tradeoffs then shows
// every lower-bound inequality of Section 1 satisfied with slack, while the
// *bisection traffic* tracks the k n^2 law tightly.
#pragma once

#include <cstdint>

#include "linalg/convert.hpp"

namespace ccmx::vlsi {

struct MeshConfig {
  std::uint64_t p = 2147483647;  // field modulus (prime)
  unsigned word_bits = 31;       // wire width used for residues
  unsigned input_bits = 8;       // k: width of the raw entries streamed in
  bool stream_inputs = true;     // charge the west-edge input phase
};

struct MeshResult {
  bool singular = false;
  std::uint64_t det_mod_p = 0;
  std::size_t cycles = 0;           // total synchronous cycles
  std::size_t wire_bits = 0;        // sum over every hop of every message
  std::size_t bisection_bits = 0;   // bits crossing the vertical mid cut
  std::size_t area_units = 0;       // PEs * (state bits), a unit-area proxy
};

/// Runs elimination on `entries` (N x N, residues mod config.p).
[[nodiscard]] MeshResult simulate_mesh(const la::ModMatrix& entries,
                                       const MeshConfig& config);

/// Convenience: reduce an integer matrix mod p and simulate.
[[nodiscard]] MeshResult simulate_mesh(const la::IntMatrix& m,
                                       const MeshConfig& config);

/// Wavefront-pipelined variant: elimination step s launches as soon as its
/// column data is three hops behind step s-1 (the classic systolic
/// Gaussian-elimination schedule), so T drops from Theta(N^2) to Theta(N)
/// while the wire traffic — and hence the bisection bits Thompson's
/// argument charges — is unchanged.  The ablation shows AT^2 moving toward
/// the Omega((k n^2)^2) floor as the schedule tightens.
[[nodiscard]] MeshResult simulate_mesh_pipelined(const la::ModMatrix& entries,
                                                 const MeshConfig& config);
[[nodiscard]] MeshResult simulate_mesh_pipelined(const la::IntMatrix& m,
                                                 const MeshConfig& config);

}  // namespace ccmx::vlsi
