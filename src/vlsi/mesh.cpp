#include "vlsi/mesh.hpp"

#include "bigint/modular.hpp"
#include "util/require.hpp"

namespace ccmx::vlsi {

namespace {

using num::invmod;
using num::mulmod;

/// Charges a horizontal message travelling between columns [from, to] on any
/// row: `bits` per hop, plus one bisection crossing if it spans the mid cut.
struct Meter {
  std::size_t n = 0;
  std::size_t cycles = 0;
  std::size_t wire_bits = 0;
  std::size_t bisection_bits = 0;

  void horizontal(std::size_t from_col, std::size_t to_col, unsigned bits) {
    const std::size_t lo = std::min(from_col, to_col);
    const std::size_t hi = std::max(from_col, to_col);
    const std::size_t hops = hi - lo;
    wire_bits += hops * bits;
    const std::size_t cut = n / 2;  // between columns cut-1 and cut
    if (lo < cut && hi >= cut) bisection_bits += bits;
  }

  void vertical(std::size_t from_row, std::size_t to_row, unsigned bits) {
    const std::size_t hops =
        from_row > to_row ? from_row - to_row : to_row - from_row;
    wire_bits += hops * bits;
  }
};

}  // namespace

MeshResult simulate_mesh(const la::ModMatrix& entries,
                         const MeshConfig& config) {
  CCMX_REQUIRE(entries.is_square(), "mesh needs a square matrix");
  CCMX_REQUIRE(config.p >= 2, "modulus must be >= 2");
  const std::size_t n = entries.rows();
  la::ModMatrix grid = entries;
  const std::uint64_t p = config.p;

  Meter meter;
  meter.n = n;
  MeshResult result;
  result.det_mod_p = 1;
  result.area_units = n * n * config.word_bits;

  if (config.stream_inputs) {
    // Entries enter from the west edge, one word-parallel wavefront per
    // column distance; entry (i, j) traverses j hops.
    std::size_t max_hops = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        meter.horizontal(0, j, config.input_bits);
        max_hops = std::max(max_hops, j);
      }
    }
    // Pipelined load: a column-j entry arrives after j cycles; rows stream
    // in parallel, successive entries back to back.
    meter.cycles += max_hops + n;
  }

  for (std::size_t step = 0; step < n; ++step) {
    // (1) Pivot search: candidates in column `step` forward their values up
    // toward row `step` (vertical traffic; one scan pass).
    std::size_t pivot = step;
    while (pivot < n && grid(pivot, step) == 0) ++pivot;
    for (std::size_t r = step + 1; r < n; ++r) {
      meter.vertical(r, step, config.word_bits);
    }
    meter.cycles += n - step;

    if (pivot == n) {
      result.singular = true;
      result.det_mod_p = 0;
      // The array still sweeps the remaining steps (worst-case timing).
      meter.cycles += 2 * (n - step);
      continue;
    }
    if (pivot != step) {
      // (2) Row swap: both rows traverse the vertical distance in every
      // column simultaneously.
      for (std::size_t j = 0; j < n; ++j) {
        meter.vertical(pivot, step, 2 * config.word_bits);
      }
      meter.cycles += pivot - step;
      grid.swap_rows(pivot, step);
      result.det_mod_p = result.det_mod_p == 0
                             ? 0
                             : (p - result.det_mod_p) % p;
    }

    const std::uint64_t pivot_value = grid(step, step);
    result.det_mod_p = mulmod(result.det_mod_p, pivot_value, p);
    const std::uint64_t inv = invmod(pivot_value, p);

    // (3) Pivot row broadcast: each column's pivot-row entry flows down to
    // the rows below (vertical traffic, pipelined: n - step cycles).
    for (std::size_t j = step; j < n; ++j) {
      meter.vertical(step, n - 1, config.word_bits);
    }
    meter.cycles += n - step;

    // (4) Multiplier broadcast: each row i > step computes its factor at
    // column `step` and broadcasts it east to columns step..n-1 (horizontal
    // traffic; this is what crosses the bisection).
    for (std::size_t i = step + 1; i < n; ++i) {
      meter.horizontal(step, n - 1, config.word_bits);
    }
    meter.cycles += n - step;

    // (5) Local update (one multiply-subtract cycle everywhere).
    for (std::size_t i = step + 1; i < n; ++i) {
      if (grid(i, step) == 0) continue;
      const std::uint64_t factor = mulmod(grid(i, step), inv, p);
      for (std::size_t j = step; j < n; ++j) {
        const std::uint64_t sub = mulmod(factor, grid(step, j), p);
        grid(i, j) = grid(i, j) >= sub ? grid(i, j) - sub
                                       : grid(i, j) + p - sub;
      }
    }
    meter.cycles += 1;
  }

  result.cycles = meter.cycles;
  result.wire_bits = meter.wire_bits;
  result.bisection_bits = meter.bisection_bits;
  if (!result.singular) result.singular = result.det_mod_p == 0;
  return result;
}

MeshResult simulate_mesh(const la::IntMatrix& m, const MeshConfig& config) {
  return simulate_mesh(la::reduce_mod(m, config.p), config);
}

MeshResult simulate_mesh_pipelined(const la::ModMatrix& entries,
                                   const MeshConfig& config) {
  // Same dataflow and traffic; only the schedule differs.  Step s of the
  // sequential design occupies ~3(n - s) + 1 cycles; the pipelined array
  // overlaps steps with a fixed 3-cycle launch interval (the wavefront must
  // stay behind the previous step's pivot broadcast), finishing at
  //   start(last) + duration(last)  with start(s) = 3 s.
  MeshResult result = simulate_mesh(entries, config);
  const std::size_t n = entries.rows();
  std::size_t finish = 0;
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t start = 3 * step;
    const std::size_t duration = 3 * (n - step) + 1;
    finish = std::max(finish, start + duration);
  }
  std::size_t cycles = finish;
  if (config.stream_inputs) cycles += 2 * n;  // the load wavefront prefix
  result.cycles = cycles;
  return result;
}

MeshResult simulate_mesh_pipelined(const la::IntMatrix& m,
                                   const MeshConfig& config) {
  return simulate_mesh_pipelined(la::reduce_mod(m, config.p), config);
}

}  // namespace ccmx::vlsi
