#include "vlsi/tradeoffs.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace ccmx::vlsi {

double comm_complexity(std::size_t n, unsigned k) {
  return static_cast<double>(k) * static_cast<double>(n) *
         static_cast<double>(n);
}

std::vector<BoundRow> audit_design(std::size_t n, unsigned k, double area,
                                   double time) {
  CCMX_REQUIRE(area > 0 && time > 0, "design must have positive area/time");
  const double c = comm_complexity(n, k);
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  std::vector<BoundRow> rows;
  const auto add = [&rows](std::string name, double measured, double bound) {
    rows.push_back(BoundRow{std::move(name), measured, bound,
                            bound > 0 ? measured / bound : 0.0});
  };
  add("A", area, c);
  add("A*T^2", area * time * time, c * c);
  add("A*T", area * time, std::pow(dk, 1.5) * dn * dn * dn);
  add("T (Thompson)", time, c / std::sqrt(area));
  add("T (CM, sharpened)", time, std::sqrt(dk) * dn);
  // The a-parameterized family at a = 1/2 as a representative interior point.
  add("A*T (a=1/2 family)", area * time, std::pow(c, 1.5));
  return rows;
}

ComparisonRow bound_comparison(std::size_t n, unsigned k) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return ComparisonRow{std::pow(dk, 1.5) * dn * dn * dn, dn * dn,
                       std::sqrt(dk) * dn, dn};
}

double min_time_for_area(std::size_t n, unsigned k, double area) {
  CCMX_REQUIRE(area > 0, "area must be positive");
  return comm_complexity(n, k) / std::sqrt(area);
}

double min_area_for_time(std::size_t n, unsigned k, double time) {
  CCMX_REQUIRE(time > 0, "time must be positive");
  const double c = comm_complexity(n, k);
  return std::max(c, (c / time) * (c / time));
}

}  // namespace ccmx::vlsi
