// Exact SVD *structure* (Corollary 1.2(d)).
//
// The singular values themselves are algebraic irrationals, but everything
// the paper's reduction needs — how many of them are nonzero, and the
// nonzero structure of Sigma — is exactly computable over Q:
//   * #nonzero singular values == rank(A) (== rank of A^T A),
//   * their squares are the nonzero roots of charpoly(A^T A), whose
//     elementary symmetric functions we return exactly,
//   * sigma_min > 0  <=>  A nonsingular.
#pragma once

#include <vector>

#include "linalg/convert.hpp"

namespace ccmx::la {

struct SvdStructure {
  std::size_t rank = 0;                   // number of nonzero singular values
  std::size_t dimension = 0;              // min(rows, cols)
  /// charpoly(A^T A) = x^n + c1 x^{n-1} + ... ; coefficients are (+-) the
  /// elementary symmetric polynomials in the squared singular values.
  std::vector<num::Rational> gram_charpoly;
  /// product of the squared *nonzero* singular values (== det(A)^2 for
  /// square nonsingular A): the lowest nonzero charpoly coefficient up to
  /// sign.
  num::Rational nonzero_sigma_sq_product;
  /// Number of DISTINCT nonzero singular values (Sturm count of the
  /// positive roots of the Gram characteristic polynomial; <= rank, with
  /// equality iff all nonzero singular values are simple).
  std::size_t distinct_nonzero_sigmas = 0;

  [[nodiscard]] bool singular() const noexcept { return rank < dimension; }
};

[[nodiscard]] SvdStructure svd_structure(const RatMatrix& a);

}  // namespace ccmx::la
