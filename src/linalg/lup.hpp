// Exact LUP decomposition over the rationals: P A = L U with L unit lower
// triangular and U upper triangular (Corollary 1.2(e) of the paper).  For a
// singular A, U surfaces a zero pivot on its diagonal — the "nonzero
// structure of the factor matrices" already decides singularity, which is
// the reduction the paper exploits.
#pragma once

#include <vector>

#include "linalg/convert.hpp"

namespace ccmx::la {

struct LupResult {
  std::vector<std::size_t> perm;  // P as a row permutation: PA row i = A row perm[i]
  RatMatrix lower;                // unit lower triangular
  RatMatrix upper;                // upper triangular (possibly with zero pivots)
  std::size_t rank = 0;           // number of nonzero pivots

  [[nodiscard]] bool singular() const noexcept {
    return rank < upper.rows();
  }
};

/// Decomposes a square rational matrix.  Always succeeds; for rank-deficient
/// inputs the elimination simply proceeds past zero columns, leaving zero
/// pivots in U.
[[nodiscard]] LupResult lup_decompose(const RatMatrix& a);

/// Reconstructs P A from the factors (test helper): returns L * U.
[[nodiscard]] RatMatrix lup_reconstruct(const LupResult& f);

}  // namespace ccmx::la
