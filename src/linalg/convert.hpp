// Conversions between the entry rings used by the library.
#pragma once

#include <cstdint>

#include "bigint/bigint.hpp"
#include "bigint/rational.hpp"
#include "linalg/matrix.hpp"

namespace ccmx::la {

using IntMatrix = Matrix<num::BigInt>;
using RatMatrix = Matrix<num::Rational>;
using ModMatrix = Matrix<std::uint64_t>;

[[nodiscard]] inline RatMatrix to_rational(const IntMatrix& m) {
  return map_matrix<num::Rational>(
      m, [](const num::BigInt& v) { return num::Rational(v); });
}

// ccmx-lint: allow(dead-export) — conversion kept symmetric with to_rational
[[nodiscard]] inline IntMatrix from_int64(
    const Matrix<std::int64_t>& m) {
  return map_matrix<num::BigInt>(
      m, [](std::int64_t v) { return num::BigInt(v); });
}

/// Entrywise canonical residue in [0, p).
[[nodiscard]] inline ModMatrix reduce_mod(const IntMatrix& m,
                                          std::uint64_t p) {
  return map_matrix<std::uint64_t>(
      m, [p](const num::BigInt& v) { return v.mod_floor_u64(p); });
}

}  // namespace ccmx::la
