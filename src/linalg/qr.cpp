#include "linalg/qr.hpp"

#include "util/require.hpp"

namespace ccmx::la {

using num::Rational;

namespace {

Rational dot_col(const RatMatrix& m, std::size_t a, std::size_t b) {
  Rational sum(0);
  for (std::size_t i = 0; i < m.rows(); ++i) sum += m(i, a) * m(i, b);
  return sum;
}

}  // namespace

QrResult qr_decompose(const RatMatrix& a) {
  CCMX_REQUIRE(a.rows() >= a.cols(), "QR needs rows >= cols");
  const std::size_t n = a.cols();
  QrResult out;
  out.q = a;
  out.r = RatMatrix::identity(n, Rational(1));

  for (std::size_t j = 0; j < n; ++j) {
    // Subtract projections onto the previous (orthogonal) columns.
    for (std::size_t i = 0; i < j; ++i) {
      const Rational denom = dot_col(out.q, i, i);
      if (denom.is_zero()) continue;  // dependent column produced a zero q_i
      const Rational coeff = dot_col(out.q, i, j) / denom;
      out.r(i, j) = coeff;
      if (coeff.is_zero()) continue;
      for (std::size_t row = 0; row < out.q.rows(); ++row) {
        out.q(row, j) -= coeff * out.q(row, i);
      }
    }
    if (!dot_col(out.q, j, j).is_zero()) ++out.rank;
  }
  return out;
}

RatMatrix qr_reconstruct(const QrResult& f) { return f.q * f.r; }

RatMatrix gram(const RatMatrix& m) { return m.transpose() * m; }

}  // namespace ccmx::la
