// Dense univariate polynomials over Q, with Sturm sequences.
//
// Upgrade path for the SVD-structure computation (Corollary 1.2(d)): the
// squared singular values are the roots of charpoly(A^T A); a Sturm
// sequence counts the DISTINCT real roots in any interval exactly, so we
// can report not just how many singular values are nonzero (the rank) but
// how many distinct ones there are — still without ever leaving Q.
#pragma once

#include <vector>

#include "bigint/rational.hpp"

namespace ccmx::la {

/// Coefficients most-significant-first (matching charpoly()): p[0] x^n +
/// p[1] x^{n-1} + ... + p[n].  The zero polynomial is the empty vector.
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<num::Rational> coeffs_msf);

  [[nodiscard]] static Poly zero() { return Poly(); }

  [[nodiscard]] bool is_zero() const noexcept { return coeffs_.empty(); }
  /// Degree; requires a nonzero polynomial.
  [[nodiscard]] std::size_t degree() const;
  [[nodiscard]] const std::vector<num::Rational>& coeffs() const noexcept {
    return coeffs_;
  }
  [[nodiscard]] const num::Rational& leading() const;

  [[nodiscard]] num::Rational eval(const num::Rational& x) const;
  [[nodiscard]] Poly derivative() const;
  [[nodiscard]] Poly operator-() const;

  friend Poly operator+(const Poly& a, const Poly& b);
  friend Poly operator-(const Poly& a, const Poly& b);
  friend Poly operator*(const Poly& a, const Poly& b);
  /// Polynomial division: returns (quotient, remainder); b nonzero.
  [[nodiscard]] static std::pair<Poly, Poly> divmod(const Poly& a,
                                                    const Poly& b);

  friend bool operator==(const Poly& a, const Poly& b) noexcept {
    return a.coeffs_ == b.coeffs_;
  }

 private:
  void trim();
  std::vector<num::Rational> coeffs_;  // MSF, leading nonzero
};

/// The Sturm chain p, p', -rem(...), ...
[[nodiscard]] std::vector<Poly> sturm_chain(const Poly& p);

/// Number of DISTINCT real roots of p in the half-open interval (lo, hi].
[[nodiscard]] std::size_t count_real_roots(const Poly& p,
                                           const num::Rational& lo,
                                           const num::Rational& hi);

/// Number of distinct real roots anywhere (uses a Cauchy root bound).
[[nodiscard]] std::size_t count_real_roots(const Poly& p);

/// Number of distinct roots in (0, +bound]: for the Gram characteristic
/// polynomial this is the count of distinct nonzero singular values.
[[nodiscard]] std::size_t count_positive_roots(const Poly& p);

}  // namespace ccmx::la
