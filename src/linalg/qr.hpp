// Exact QR factorization over the rationals (Corollary 1.2(c)).
//
// True QR needs square roots, which leave Q.  The paper only needs the
// *nonzero structure* of the factors ("the results remain correct even if we
// only require that we know the nonzero structure of the factor matrices"),
// so we compute the rational Gram-Schmidt form A = Q R with Q's columns
// pairwise orthogonal (not unit) and R upper triangular with unit diagonal.
// Normalizing Q's columns would only rescale R's rows by the (irrational)
// column norms, leaving every zero/nonzero position unchanged — hence this
// factorization carries exactly the information the corollary is about.
// A zero column in Q certifies linear dependence, i.e. singularity.
#pragma once

#include "linalg/convert.hpp"

namespace ccmx::la {

struct QrResult {
  RatMatrix q;  // pairwise orthogonal columns (possibly zero columns)
  RatMatrix r;  // upper triangular, unit diagonal
  std::size_t rank = 0;  // number of nonzero columns of Q

  [[nodiscard]] bool singular() const noexcept { return rank < q.cols(); }
};

/// Gram-Schmidt; exact over Q.  Works for any rows >= cols matrix.
[[nodiscard]] QrResult qr_decompose(const RatMatrix& a);

/// Returns Q * R (test helper; must equal the input).
[[nodiscard]] RatMatrix qr_reconstruct(const QrResult& f);

/// Gram matrix Q^T Q — diagonal iff the columns are orthogonal.
[[nodiscard]] RatMatrix gram(const RatMatrix& m);

}  // namespace ccmx::la
