#include "linalg/lup.hpp"

#include <numeric>

#include "util/require.hpp"

namespace ccmx::la {

using num::Rational;

LupResult lup_decompose(const RatMatrix& a) {
  CCMX_REQUIRE(a.is_square(), "LUP of a non-square matrix");
  const std::size_t n = a.rows();
  LupResult out;
  out.perm.resize(n);
  std::iota(out.perm.begin(), out.perm.end(), std::size_t{0});
  out.lower = RatMatrix::identity(n, Rational(1));
  out.upper = a;

  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < n; ++col) {
    // Pivot: first nonzero entry at or below `row` in this column.
    std::size_t pivot = row;
    while (pivot < n && out.upper(pivot, col).is_zero()) ++pivot;
    if (pivot == n) continue;  // zero column under `row`: U keeps a 0 pivot
    if (pivot != row) {
      out.upper.swap_rows(pivot, row);
      std::swap(out.perm[pivot], out.perm[row]);
      // Swap the already-computed multiplier part of L (columns < row).
      for (std::size_t j = 0; j < row; ++j) {
        std::swap(out.lower(pivot, j), out.lower(row, j));
      }
    }
    const Rational inv = out.upper(row, col).reciprocal();
    for (std::size_t i = row + 1; i < n; ++i) {
      if (out.upper(i, col).is_zero()) continue;
      const Rational factor = out.upper(i, col) * inv;
      out.lower(i, row) = factor;
      for (std::size_t j = col; j < n; ++j) {
        out.upper(i, j) -= factor * out.upper(row, j);
      }
    }
    ++out.rank;
    ++row;
  }
  return out;
}

RatMatrix lup_reconstruct(const LupResult& f) {
  return f.lower * f.upper;
}

}  // namespace ccmx::la
