// Strassen multiplication over an arbitrary ring.
//
// The Lin-Wu discussion (Section 1) is about the communication cost of
// *verifying* products; computing them locally is the agents' free
// computation, and for BigInt entries Strassen's 7-multiplication recursion
// beats the schoolbook cubic well before n = 100.  Kept generic and exact;
// an ablation bench compares it against the naive and blocked kernels.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace ccmx::la {

namespace detail {

template <class T>
Matrix<T> strassen_padded(const Matrix<T>& a, const Matrix<T>& b,
                          std::size_t cutoff) {
  const std::size_t n = a.rows();
  if (n <= cutoff) return multiply_naive(a, b);
  const std::size_t h = n / 2;

  const Matrix<T> a11 = a.block(0, 0, h, h), a12 = a.block(0, h, h, h);
  const Matrix<T> a21 = a.block(h, 0, h, h), a22 = a.block(h, h, h, h);
  const Matrix<T> b11 = b.block(0, 0, h, h), b12 = b.block(0, h, h, h);
  const Matrix<T> b21 = b.block(h, 0, h, h), b22 = b.block(h, h, h, h);

  const Matrix<T> m1 = strassen_padded(a11 + a22, b11 + b22, cutoff);
  const Matrix<T> m2 = strassen_padded(a21 + a22, b11, cutoff);
  const Matrix<T> m3 = strassen_padded(a11, b12 - b22, cutoff);
  const Matrix<T> m4 = strassen_padded(a22, b21 - b11, cutoff);
  const Matrix<T> m5 = strassen_padded(a11 + a12, b22, cutoff);
  const Matrix<T> m6 = strassen_padded(a21 - a11, b11 + b12, cutoff);
  const Matrix<T> m7 = strassen_padded(a12 - a22, b21 + b22, cutoff);

  Matrix<T> out(n, n);
  out.set_block(0, 0, m1 + m4 - m5 + m7);
  out.set_block(0, h, m3 + m5);
  out.set_block(h, 0, m2 + m4);
  out.set_block(h, h, m1 - m2 + m3 + m6);
  return out;
}

}  // namespace detail

/// Exact Strassen product of square matrices (any size: internally padded
/// to the next power of two).  `cutoff` switches to the naive kernel.
template <class T>
[[nodiscard]] Matrix<T> multiply_strassen(const Matrix<T>& a,
                                          const Matrix<T>& b,
                                          std::size_t cutoff = 16) {
  CCMX_REQUIRE(a.is_square() && b.is_square() && a.rows() == b.rows(),
               "strassen needs equal square matrices");
  CCMX_REQUIRE(cutoff >= 1, "cutoff must be positive");
  const std::size_t n = a.rows();
  if (n == 0) return Matrix<T>(0, 0);
  std::size_t padded = 1;
  while (padded < n) padded <<= 1;
  if (padded == n) return detail::strassen_padded(a, b, cutoff);
  Matrix<T> pa(padded, padded), pb(padded, padded);
  pa.set_block(0, 0, a);
  pb.set_block(0, 0, b);
  return detail::strassen_padded(pa, pb, cutoff).block(0, 0, n, n);
}

}  // namespace ccmx::la
