// Dense matrices with value semantics, generic over the entry ring.
//
// Instantiated with num::BigInt (exact integer work: Bareiss, the paper's
// hard instances), num::Rational (RREF / LUP / QR / characteristic
// polynomials) and std::uint64_t (mod-p protocol arithmetic).
#pragma once

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace ccmx::la {

template <class T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, const T& fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major nested initializer list: Matrix<int>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      CCMX_REQUIRE(row.size() == cols_, "ragged initializer");
      for (const T& value : row) data_.push_back(value);
    }
  }

  [[nodiscard]] static Matrix identity(std::size_t n, const T& one = T{1}) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = one;
    return m;
  }

  /// Builds an r x c matrix from a generator f(i, j).
  [[nodiscard]] static Matrix generate(
      std::size_t rows, std::size_t cols,
      const std::function<T(std::size_t, std::size_t)>& f) {
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) m(i, j) = f(i, j);
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) {
    CCMX_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j) const {
    CCMX_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  /// Bounds-checked access.
  [[nodiscard]] const T& at(std::size_t i, std::size_t j) const {
    CCMX_REQUIRE(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  T& at(std::size_t i, std::size_t j) {
    CCMX_REQUIRE(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

  [[nodiscard]] Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
    return out;
  }

  [[nodiscard]] std::vector<T> row(std::size_t i) const {
    CCMX_REQUIRE(i < rows_, "row index out of range");
    return std::vector<T>(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
                          data_.begin() +
                              static_cast<std::ptrdiff_t>((i + 1) * cols_));
  }

  [[nodiscard]] std::vector<T> col(std::size_t j) const {
    CCMX_REQUIRE(j < cols_, "column index out of range");
    std::vector<T> out;
    out.reserve(rows_);
    for (std::size_t i = 0; i < rows_; ++i) out.push_back((*this)(i, j));
    return out;
  }

  void swap_rows(std::size_t a, std::size_t b) {
    CCMX_REQUIRE(a < rows_ && b < rows_, "row index out of range");
    if (a == b) return;
    for (std::size_t j = 0; j < cols_; ++j) {
      std::swap((*this)(a, j), (*this)(b, j));
    }
  }

  void swap_cols(std::size_t a, std::size_t b) {
    CCMX_REQUIRE(a < cols_ && b < cols_, "column index out of range");
    if (a == b) return;
    for (std::size_t i = 0; i < rows_; ++i) {
      std::swap((*this)(i, a), (*this)(i, b));
    }
  }

  /// Copy of the block with row indices [r0, r0+h) and columns [c0, c0+w).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t h,
                             std::size_t w) const {
    CCMX_REQUIRE(r0 + h <= rows_ && c0 + w <= cols_, "block out of range");
    Matrix out(h, w);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
    }
    return out;
  }

  /// Writes `part` into this matrix at offset (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& part) {
    CCMX_REQUIRE(r0 + part.rows() <= rows_ && c0 + part.cols() <= cols_,
                 "set_block out of range");
    for (std::size_t i = 0; i < part.rows(); ++i) {
      for (std::size_t j = 0; j < part.cols(); ++j) {
        (*this)(r0 + i, c0 + j) = part(i, j);
      }
    }
  }

  /// Copy with row `i` and column `j` removed (cofactor minors).
  [[nodiscard]] Matrix minor_matrix(std::size_t i, std::size_t j) const {
    CCMX_REQUIRE(i < rows_ && j < cols_, "minor index out of range");
    Matrix out(rows_ - 1, cols_ - 1);
    for (std::size_t r = 0, ro = 0; r < rows_; ++r) {
      if (r == i) continue;
      for (std::size_t c = 0, co = 0; c < cols_; ++c) {
        if (c == j) continue;
        out(ro, co) = (*this)(r, c);
        ++co;
      }
      ++ro;
    }
    return out;
  }

  /// Reorders rows by `perm` (output row i = input row perm[i]).
  [[nodiscard]] Matrix permute_rows(const std::vector<std::size_t>& perm) const {
    CCMX_REQUIRE(perm.size() == rows_, "permutation arity mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      CCMX_REQUIRE(perm[i] < rows_, "permutation index out of range");
      for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(perm[i], j);
    }
    return out;
  }

  [[nodiscard]] Matrix permute_cols(const std::vector<std::size_t>& perm) const {
    CCMX_REQUIRE(perm.size() == cols_, "permutation arity mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j) {
      CCMX_REQUIRE(perm[j] < cols_, "permutation index out of range");
      for (std::size_t i = 0; i < rows_; ++i) out(i, j) = (*this)(i, perm[j]);
    }
    return out;
  }

  /// [this | rhs] horizontal concatenation.
  [[nodiscard]] Matrix augment(const Matrix& rhs) const {
    CCMX_REQUIRE(rows_ == rhs.rows_, "augment with mismatched rows");
    Matrix out(rows_, cols_ + rhs.cols_);
    out.set_block(0, 0, *this);
    out.set_block(0, cols_, rhs);
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

  Matrix& operator+=(const Matrix& rhs) {
    CCMX_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& rhs) {
    CCMX_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
  }
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < rows_; ++i) {
      os << (i == 0 ? "[" : " ");
      for (std::size_t j = 0; j < cols_; ++j) {
        os << (*this)(i, j);
        if (j + 1 < cols_) os << ' ';
      }
      os << (i + 1 == rows_ ? "]" : "\n");
    }
    return os.str();
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Naive cubic product (reference implementation).
template <class T>
[[nodiscard]] Matrix<T> multiply_naive(const Matrix<T>& a, const Matrix<T>& b) {
  CCMX_REQUIRE(a.cols() == b.rows(), "product shape mismatch");
  Matrix<T> out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T& aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

/// Cache-blocked product; identical results, better locality for large T=u64.
template <class T>
[[nodiscard]] Matrix<T> multiply_blocked(const Matrix<T>& a,
                                         const Matrix<T>& b,
                                         std::size_t block = 32) {
  CCMX_REQUIRE(a.cols() == b.rows(), "product shape mismatch");
  CCMX_REQUIRE(block > 0, "block size must be positive");
  Matrix<T> out(a.rows(), b.cols());
  for (std::size_t ii = 0; ii < a.rows(); ii += block) {
    const std::size_t imax = std::min(a.rows(), ii + block);
    for (std::size_t kk = 0; kk < a.cols(); kk += block) {
      const std::size_t kmax = std::min(a.cols(), kk + block);
      for (std::size_t jj = 0; jj < b.cols(); jj += block) {
        const std::size_t jmax = std::min(b.cols(), jj + block);
        for (std::size_t i = ii; i < imax; ++i) {
          for (std::size_t k = kk; k < kmax; ++k) {
            const T& aik = a(i, k);
            for (std::size_t j = jj; j < jmax; ++j) {
              out(i, j) += aik * b(k, j);
            }
          }
        }
      }
    }
  }
  return out;
}

template <class T>
[[nodiscard]] Matrix<T> operator*(const Matrix<T>& a, const Matrix<T>& b) {
  return multiply_naive(a, b);
}

/// Matrix-vector product.
template <class T>
[[nodiscard]] std::vector<T> multiply(const Matrix<T>& a,
                                      const std::vector<T>& x) {
  CCMX_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<T> out(a.rows(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out[i] += a(i, j) * x[j];
    }
  }
  return out;
}

/// Entrywise map between entry types (e.g. BigInt -> Rational).
template <class To, class From, class Fn>
[[nodiscard]] Matrix<To> map_matrix(const Matrix<From>& m, Fn&& fn) {
  Matrix<To> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = fn(m(i, j));
  }
  return out;
}

template <class T>
std::ostream& operator<<(std::ostream& os, const Matrix<T>& m) {
  return os << m.to_string();
}

}  // namespace ccmx::la
