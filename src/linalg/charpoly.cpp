#include "linalg/charpoly.hpp"

#include "util/require.hpp"

namespace ccmx::la {

using num::Rational;

std::vector<Rational> charpoly(const RatMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "charpoly of a non-square matrix");
  const std::size_t n = m.rows();
  std::vector<Rational> coeffs(n + 1, Rational(0));
  coeffs[0] = Rational(1);
  // Faddeev-LeVerrier: M_1 = M, c_1 = -tr(M_1);
  // M_{k+1} = M (M_k + c_k I), c_{k+1} = -tr(M_{k+1}) / (k+1).
  RatMatrix mk = m;
  for (std::size_t k = 1; k <= n; ++k) {
    Rational trace(0);
    for (std::size_t i = 0; i < n; ++i) trace += mk(i, i);
    const Rational ck = -(trace / Rational(static_cast<std::int64_t>(k)));
    coeffs[k] = ck;
    if (k == n) break;
    RatMatrix shifted = mk;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += ck;
    mk = m * shifted;
  }
  return coeffs;
}

std::size_t zero_root_multiplicity(const std::vector<Rational>& monic_coeffs) {
  CCMX_REQUIRE(!monic_coeffs.empty(), "empty polynomial");
  std::size_t multiplicity = 0;
  for (std::size_t i = monic_coeffs.size(); i-- > 1;) {
    if (!monic_coeffs[i].is_zero()) break;
    ++multiplicity;
  }
  return multiplicity;
}

}  // namespace ccmx::la
