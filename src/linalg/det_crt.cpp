#include "linalg/det_crt.hpp"

#include <algorithm>

#include "bigint/modular.hpp"
#include "linalg/det.hpp"
#include "linalg/fp.hpp"
#include "util/narrow.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace ccmx::la {

using num::BigInt;

namespace {

/// Bit length of the largest |entry| (0 for the zero matrix).
std::size_t max_entry_bits(const IntMatrix& m) {
  std::size_t bits = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      bits = std::max(bits, m(i, j).bit_length());
    }
  }
  return bits;
}

/// Deterministic ladder of distinct 62-bit primes.
std::vector<std::uint64_t> prime_ladder(std::size_t count) {
  std::vector<std::uint64_t> primes;
  primes.reserve(count);
  std::uint64_t cursor = (std::uint64_t{1} << 61) + 1;
  while (primes.size() < count) {
    cursor = num::next_prime(cursor);
    primes.push_back(cursor);
    cursor += 2;
  }
  return primes;
}

}  // namespace

std::size_t det_crt_prime_count(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "determinant of a non-square matrix");
  if (m.rows() == 0) return 1;
  const auto k = util::narrow_cast<unsigned>(std::min<std::size_t>(
      62, max_entry_bits(m) + 1));
  // Need prod p_i > 2 * |det| ; each prime contributes > 61 bits.
  const std::size_t det_bits = hadamard_det_bits(m.rows(), k) + 2;
  return det_bits / 61 + 1;
}

BigInt det_crt(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "determinant of a non-square matrix");
  const std::size_t n = m.rows();
  if (n == 0) return BigInt(1);

  const std::vector<std::uint64_t> primes =
      prime_ladder(det_crt_prime_count(m));
  std::vector<std::uint64_t> residues(primes.size(), 0);

  // Independent mod-p eliminations: shard across hardware threads.
  util::parallel_for(0, primes.size(), [&](std::size_t i) {
    residues[i] = det_mod_p(reduce_mod(m, primes[i]), primes[i]);
  });

  // Incremental CRT: value stays in [0, modulus).
  BigInt value(static_cast<std::int64_t>(residues[0]));
  BigInt modulus(static_cast<std::int64_t>(primes[0]));
  for (std::size_t i = 1; i < primes.size(); ++i) {
    const std::uint64_t p = primes[i];
    // delta = (r_i - value) * modulus^{-1} mod p.
    const std::uint64_t value_mod_p = value.mod_u64(p);
    const std::uint64_t diff =
        residues[i] >= value_mod_p ? residues[i] - value_mod_p
                                   : residues[i] + p - value_mod_p;
    const std::uint64_t inv = num::invmod(modulus.mod_u64(p), p);
    const std::uint64_t delta = num::mulmod(diff, inv, p);
    // 62-bit delta and p: fused word-sized CRT fold, no BigInt temporaries.
    value.add_mul(modulus, static_cast<std::int64_t>(delta));
    modulus *= static_cast<std::int64_t>(p);
  }
  // Map to the symmetric range (det may be negative).
  if (value + value > modulus) value -= modulus;
  return value;
}

}  // namespace ccmx::la
