#include "linalg/hnf.hpp"

#include "util/require.hpp"

namespace ccmx::la {

using num::BigInt;

HnfResult hnf(const IntMatrix& m) {
  HnfResult out;
  out.h = m;
  IntMatrix& a = out.h;
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t row = 0;
  for (std::size_t col = 0; col < cols && row < rows; ++col) {
    // Euclidean reduction within the column: repeatedly subtract multiples
    // of the minimal-magnitude row until a single nonzero survives at `row`.
    for (;;) {
      std::size_t best = rows;
      for (std::size_t r = row; r < rows; ++r) {
        if (a(r, col).is_zero()) continue;
        if (best == rows || a(r, col).abs() < a(best, col).abs()) best = r;
      }
      if (best == rows) break;  // column is zero below `row`
      a.swap_rows(best, row);
      bool reduced_all = true;
      for (std::size_t r = row + 1; r < rows; ++r) {
        if (a(r, col).is_zero()) continue;
        const BigInt q = BigInt::divmod(a(r, col), a(row, col)).first;
        for (std::size_t j = 0; j < cols; ++j) {
          a(r, j) -= q * a(row, j);
        }
        if (!a(r, col).is_zero()) reduced_all = false;
      }
      if (reduced_all) break;
    }
    if (a(row, col).is_zero()) continue;  // no pivot in this column
    // Positive pivot.
    if (a(row, col).is_negative()) {
      for (std::size_t j = 0; j < cols; ++j) a(row, j) = -a(row, j);
    }
    // Reduce the entries above the pivot into [0, pivot).
    for (std::size_t r = 0; r < row; ++r) {
      if (a(r, col).is_zero()) continue;
      // floor division so residues land in [0, pivot).
      BigInt q = BigInt::divmod(a(r, col), a(row, col)).first;
      if ((a(r, col) - q * a(row, col)).is_negative()) q -= BigInt(1);
      if (q.is_zero()) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        a(r, j) -= q * a(row, j);
      }
    }
    ++row;
  }
  out.rank = row;
  return out;
}

SnfResult snf(const IntMatrix& m) {
  SnfResult out;
  out.s = m;
  IntMatrix& a = out.s;
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  const std::size_t steps = std::min(rows, cols);

  for (std::size_t t = 0; t < steps; ++t) {
    for (;;) {
      // Minimal-magnitude nonzero pivot in the trailing block.
      std::size_t pi = rows, pj = cols;
      for (std::size_t i = t; i < rows; ++i) {
        for (std::size_t j = t; j < cols; ++j) {
          if (a(i, j).is_zero()) continue;
          if (pi == rows || a(i, j).abs() < a(pi, pj).abs()) {
            pi = i;
            pj = j;
          }
        }
      }
      if (pi == rows) {
        pj = cols;  // block is zero: done with the whole elimination
      }
      if (pi == rows) goto finished;
      a.swap_rows(pi, t);
      a.swap_cols(pj, t);

      bool clean = true;
      // Clear column t below the pivot.
      for (std::size_t i = t + 1; i < rows; ++i) {
        if (a(i, t).is_zero()) continue;
        const BigInt q = BigInt::divmod(a(i, t), a(t, t)).first;
        for (std::size_t j = t; j < cols; ++j) a(i, j) -= q * a(t, j);
        if (!a(i, t).is_zero()) clean = false;
      }
      // Clear row t right of the pivot.
      for (std::size_t j = t + 1; j < cols; ++j) {
        if (a(t, j).is_zero()) continue;
        const BigInt q = BigInt::divmod(a(t, j), a(t, t)).first;
        for (std::size_t i = t; i < rows; ++i) a(i, j) -= q * a(i, t);
        if (!a(t, j).is_zero()) clean = false;
      }
      if (!clean) continue;  // remainders appeared: shrink the pivot again

      // Divisibility: the pivot must divide every trailing entry.
      bool divides_all = true;
      for (std::size_t i = t + 1; i < rows && divides_all; ++i) {
        for (std::size_t j = t + 1; j < cols; ++j) {
          if (!BigInt::divmod(a(i, j), a(t, t)).second.is_zero()) {
            // Fold the offending row into row t and re-run the reduction.
            for (std::size_t jj = t; jj < cols; ++jj) a(t, jj) += a(i, jj);
            divides_all = false;
            break;
          }
        }
      }
      if (divides_all) break;
    }
    if (a(t, t).is_negative()) {
      for (std::size_t j = t; j < cols; ++j) a(t, j) = -a(t, j);
    }
  }
finished:
  for (std::size_t t = 0; t < steps; ++t) {
    if (a(t, t).is_zero()) break;
    out.divisors.push_back(a(t, t).abs());
  }
  return out;
}

BigInt abs_det_via_snf(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "determinant of a non-square matrix");
  const SnfResult result = snf(m);
  if (result.rank() < m.rows()) return BigInt(0);
  BigInt det(1);
  for (const BigInt& d : result.divisors) det *= d;
  return det;
}

bool singular_via_hnf(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "singularity of a non-square matrix");
  return hnf(m).rank < m.rows();
}

bool singular_via_snf(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "singularity of a non-square matrix");
  return snf(m).rank() < m.rows();
}

}  // namespace ccmx::la
