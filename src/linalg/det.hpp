// Exact determinants of integer matrices.
//
// The workhorse is Bareiss fraction-free elimination: all intermediate
// quantities stay integral and bounded by Hadamard's inequality, so the cost
// is O(n^3) BigInt operations on n(k + log n)-bit numbers — exactly the
// quantity the paper's communication argument is about.  A cofactor
// expansion is kept as an independent reference oracle for tests.
#pragma once

#include "bigint/bigint.hpp"
#include "linalg/convert.hpp"

namespace ccmx::la {

/// det(m) by Bareiss fraction-free Gaussian elimination.  Requires square.
[[nodiscard]] num::BigInt det_bareiss(const IntMatrix& m);

/// det(m) by cofactor expansion — O(n!) reference oracle for small n.
[[nodiscard]] num::BigInt det_cofactor(const IntMatrix& m);

/// True iff det(m) == 0.
[[nodiscard]] bool is_singular(const IntMatrix& m);

/// Hadamard upper bound on |det| for an n x n matrix whose entries have
/// absolute value < 2^k: (2^k * sqrt(n))^n, returned as a bit-length bound.
/// This drives the fingerprint protocols' prime-pool sizing.
[[nodiscard]] std::size_t hadamard_det_bits(std::size_t n, unsigned k);

}  // namespace ccmx::la
