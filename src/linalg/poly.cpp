#include "linalg/poly.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace ccmx::la {

using num::BigInt;
using num::Rational;

Poly::Poly(std::vector<Rational> coeffs_msf) : coeffs_(std::move(coeffs_msf)) {
  trim();
}

void Poly::trim() {
  std::size_t lead = 0;
  while (lead < coeffs_.size() && coeffs_[lead].is_zero()) ++lead;
  coeffs_.erase(coeffs_.begin(), coeffs_.begin() + static_cast<std::ptrdiff_t>(lead));
}

std::size_t Poly::degree() const {
  CCMX_REQUIRE(!is_zero(), "degree of the zero polynomial");
  return coeffs_.size() - 1;
}

const Rational& Poly::leading() const {
  CCMX_REQUIRE(!is_zero(), "leading coefficient of the zero polynomial");
  return coeffs_.front();
}

Rational Poly::eval(const Rational& x) const {
  Rational acc(0);
  for (const Rational& c : coeffs_) {
    acc = acc * x + c;
  }
  return acc;
}

Poly Poly::derivative() const {
  if (is_zero() || coeffs_.size() == 1) return Poly();
  std::vector<Rational> out;
  out.reserve(coeffs_.size() - 1);
  const std::size_t n = coeffs_.size() - 1;  // degree
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(coeffs_[i] *
                  Rational(BigInt(static_cast<std::int64_t>(n - i))));
  }
  return Poly(std::move(out));
}

Poly Poly::operator-() const {
  std::vector<Rational> out;
  out.reserve(coeffs_.size());
  for (const Rational& c : coeffs_) out.push_back(-c);
  return Poly(std::move(out));
}

Poly operator+(const Poly& a, const Poly& b) {
  const std::size_t size = std::max(a.coeffs_.size(), b.coeffs_.size());
  std::vector<Rational> out(size, Rational(0));
  const std::size_t oa = size - a.coeffs_.size();
  const std::size_t ob = size - b.coeffs_.size();
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) out[oa + i] += a.coeffs_[i];
  for (std::size_t i = 0; i < b.coeffs_.size(); ++i) out[ob + i] += b.coeffs_[i];
  return Poly(std::move(out));
}

Poly operator-(const Poly& a, const Poly& b) { return a + (-b); }

Poly operator*(const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return Poly();
  std::vector<Rational> out(a.coeffs_.size() + b.coeffs_.size() - 1,
                            Rational(0));
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      out[i + j] += a.coeffs_[i] * b.coeffs_[j];
    }
  }
  return Poly(std::move(out));
}

std::pair<Poly, Poly> Poly::divmod(const Poly& a, const Poly& b) {
  CCMX_REQUIRE(!b.is_zero(), "polynomial division by zero");
  if (a.is_zero() || a.coeffs_.size() < b.coeffs_.size()) {
    return {Poly(), a};
  }
  std::vector<Rational> rem = a.coeffs_;
  const std::size_t qsize = a.coeffs_.size() - b.coeffs_.size() + 1;
  std::vector<Rational> quot(qsize, Rational(0));
  for (std::size_t i = 0; i < qsize; ++i) {
    if (rem[i].is_zero()) continue;
    const Rational factor = rem[i] / b.coeffs_.front();
    quot[i] = factor;
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      rem[i + j] -= factor * b.coeffs_[j];
    }
  }
  return {Poly(std::move(quot)), Poly(std::move(rem))};
}

std::vector<Poly> sturm_chain(const Poly& p) {
  CCMX_REQUIRE(!p.is_zero(), "Sturm chain of the zero polynomial");
  std::vector<Poly> chain;
  chain.push_back(p);
  Poly d = p.derivative();
  if (d.is_zero()) return chain;
  chain.push_back(std::move(d));
  for (;;) {
    const Poly& a = chain[chain.size() - 2];
    const Poly& b = chain.back();
    Poly rem = -Poly::divmod(a, b).second;
    if (rem.is_zero()) break;
    chain.push_back(std::move(rem));
  }
  return chain;
}

namespace {

/// Sign variations of the chain evaluated at x.
std::size_t sign_variations(const std::vector<Poly>& chain,
                            const Rational& x) {
  std::size_t variations = 0;
  int last = 0;
  for (const Poly& p : chain) {
    const int sign = p.eval(x).signum();
    if (sign == 0) continue;
    if (last != 0 && sign != last) ++variations;
    last = sign;
  }
  return variations;
}

/// A bound B with all real roots of p in (-B, B): 1 + max |a_i / a_0|.
Rational cauchy_bound(const Poly& p) {
  Rational bound(1);
  for (const Rational& c : p.coeffs()) {
    const Rational ratio = (c / p.leading()).abs();
    if (ratio > bound) bound = ratio;
  }
  return bound + Rational(1);
}

}  // namespace

std::size_t count_real_roots(const Poly& p, const Rational& lo,
                             const Rational& hi) {
  CCMX_REQUIRE(lo < hi, "empty interval");
  CCMX_REQUIRE(!p.is_zero(), "root count of the zero polynomial");
  if (p.degree() == 0) return 0;
  const auto chain = sturm_chain(p);
  const std::size_t at_lo = sign_variations(chain, lo);
  const std::size_t at_hi = sign_variations(chain, hi);
  CCMX_ASSERT(at_lo >= at_hi);
  return at_lo - at_hi;
}

std::size_t count_real_roots(const Poly& p) {
  CCMX_REQUIRE(!p.is_zero(), "root count of the zero polynomial");
  if (p.degree() == 0) return 0;
  const Rational bound = cauchy_bound(p);
  return count_real_roots(p, -bound, bound);
}

std::size_t count_positive_roots(const Poly& p) {
  CCMX_REQUIRE(!p.is_zero(), "root count of the zero polynomial");
  if (p.degree() == 0) return 0;
  return count_real_roots(p, Rational(0), cauchy_bound(p));
}

}  // namespace ccmx::la
