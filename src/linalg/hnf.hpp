// Hermite and Smith normal forms over Z.
//
// Extensions beyond the paper's list: both canonical forms determine
// singularity (and much more — the determinant up to sign is the product of
// the diagonal), so they slot into the Corollary 1.2 family: any protocol
// computing the (nonzero structure of the) HNF or SNF pays Theta(k n^2)
// bits.  Implemented with standard integer row/column reduction; entries
// stay exact BigInts.
#pragma once

#include <vector>

#include "linalg/convert.hpp"

namespace ccmx::la {

struct HnfResult {
  IntMatrix h;          // row-style HNF: upper triangular, positive pivots,
                        // entries above a pivot reduced mod the pivot
  std::size_t rank = 0; // number of nonzero rows
};

/// Row Hermite normal form (unimodular row operations only).
[[nodiscard]] HnfResult hnf(const IntMatrix& m);

struct SnfResult {
  IntMatrix s;                       // diag(d_1, .., d_r, 0, ..): d_i | d_{i+1}
  std::vector<num::BigInt> divisors; // the nonzero d_i
  [[nodiscard]] std::size_t rank() const noexcept { return divisors.size(); }
};

/// Smith normal form (unimodular row and column operations).
[[nodiscard]] SnfResult snf(const IntMatrix& m);

/// |det| = product of the SNF divisors for square full-rank matrices; used
/// as an independent determinant oracle in tests.
[[nodiscard]] num::BigInt abs_det_via_snf(const IntMatrix& m);

/// Corollary 1.2-style oracle: singular iff the HNF has a zero diagonal row.
[[nodiscard]] bool singular_via_hnf(const IntMatrix& m);
[[nodiscard]] bool singular_via_snf(const IntMatrix& m);

}  // namespace ccmx::la
