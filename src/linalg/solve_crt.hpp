// Exact solution of nonsingular integer systems by CRT + rational
// reconstruction.
//
// The production path of exact linear algebra (and the per-prime structure
// the fingerprint protocol mirrors): solve A x = b over Z_{p_i} for enough
// word-sized primes, CRT-combine each coordinate, then recover the rational
// x_j = num/den from its residue with Wang's lattice/continued-fraction
// reconstruction.  Cramer bounds size the prime pool so the reconstruction
// is provably unique; the result is verified by exact substitution anyway.
// The per-prime solves are independent and shard with util::parallel_for.
#pragma once

#include <optional>
#include <vector>

#include "bigint/rational.hpp"
#include "linalg/convert.hpp"

namespace ccmx::la {

/// Rational reconstruction: the unique p/q with value ≡ p q^{-1} (mod m),
/// |p| <= bound, 0 < q <= bound, gcd(q, m) = 1 — provided 2*bound^2 < m.
/// nullopt if no such pair exists.
[[nodiscard]] std::optional<num::Rational> rational_reconstruct(
    const num::BigInt& value, const num::BigInt& modulus,
    const num::BigInt& bound);

/// Solves A x = b exactly for square nonsingular A (entries BigInt).
/// Returns nullopt iff A is singular.  Result verified by substitution.
[[nodiscard]] std::optional<std::vector<num::Rational>> solve_crt(
    const IntMatrix& a, const std::vector<num::BigInt>& b);

}  // namespace ccmx::la
