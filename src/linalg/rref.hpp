// Reduced row echelon form over the rationals, and everything that falls
// out of it: rank, nullspace, linear solves, span membership / equality.
//
// Span equality via canonical RREF is the comparison the reproduction of
// Lemma 3.4 uses ("distinct instances of C yield distinct vector spaces"):
// two column spans are equal iff the RREFs of the transposed generators
// coincide.
#pragma once

#include <optional>
#include <vector>

#include "linalg/convert.hpp"

namespace ccmx::la {

struct RrefResult {
  RatMatrix rref;                        // the reduced form
  std::vector<std::size_t> pivot_cols;   // increasing
  [[nodiscard]] std::size_t rank() const noexcept { return pivot_cols.size(); }
};

/// Gauss-Jordan over Q; exact.
[[nodiscard]] RrefResult rref(const RatMatrix& m);

/// rank over Q of an integer matrix, via fraction-free (Bareiss) elimination
/// with full pivot search — no rational normalization cost.
[[nodiscard]] std::size_t rank(const IntMatrix& m);
[[nodiscard]] std::size_t rank(const RatMatrix& m);

/// Basis of the right nullspace {x : m x = 0}; one column vector per basis
/// element (empty when m has full column rank).
[[nodiscard]] std::vector<std::vector<num::Rational>> nullspace(
    const RatMatrix& m);

/// Solves m x = b exactly; nullopt when inconsistent.  When the system is
/// underdetermined, returns the solution with free variables set to zero.
[[nodiscard]] std::optional<std::vector<num::Rational>> solve(
    const RatMatrix& m, const std::vector<num::Rational>& b);

/// True iff v lies in the column span of m.
[[nodiscard]] bool in_column_span(const RatMatrix& m,
                                  const std::vector<num::Rational>& v);

/// Canonical form of the column span of m: the RREF of m^T with zero rows
/// dropped.  Two matrices have equal column spans iff their canonical forms
/// are equal.
[[nodiscard]] RatMatrix column_span_canonical(const RatMatrix& m);

/// True iff the column spans coincide.
[[nodiscard]] bool same_column_span(const RatMatrix& a, const RatMatrix& b);

/// Dimension of the intersection of the column spans of a and b
/// (dim a + dim b - dim [a | b]).
[[nodiscard]] std::size_t span_intersection_dim(const RatMatrix& a,
                                                const RatMatrix& b);

}  // namespace ccmx::la
