#include "linalg/svd.hpp"

#include "linalg/charpoly.hpp"
#include "linalg/poly.hpp"
#include "linalg/rref.hpp"
#include "util/require.hpp"

namespace ccmx::la {

using num::Rational;

SvdStructure svd_structure(const RatMatrix& a) {
  SvdStructure out;
  out.dimension = std::min(a.rows(), a.cols());
  // Work with the smaller Gram matrix.
  const RatMatrix g = a.rows() >= a.cols() ? a.transpose() * a
                                           : a * a.transpose();
  out.gram_charpoly = charpoly(g);
  const std::size_t zero_mult = zero_root_multiplicity(out.gram_charpoly);
  out.rank = g.rows() - zero_mult;
  CCMX_ASSERT(out.rank == rank(a));  // cross-check the two exact routes
  const std::size_t lowest_nonzero = g.rows() - zero_mult;
  if (out.rank == 0) {
    out.nonzero_sigma_sq_product = Rational(1);  // empty product
  } else {
    // charpoly = prod (x - lambda_i); the coefficient of x^{zero_mult} is
    // (-1)^rank * e_rank(nonzero lambdas).
    Rational coeff = out.gram_charpoly[lowest_nonzero];
    if (out.rank % 2 == 1) coeff = -coeff;
    out.nonzero_sigma_sq_product = coeff;
  }
  // Distinct nonzero singular values: the Gram matrix is PSD, so every
  // nonzero eigenvalue is positive; Sturm counts the distinct ones exactly.
  if (out.rank == 0) {
    out.distinct_nonzero_sigmas = 0;
  } else {
    out.distinct_nonzero_sigmas =
        count_positive_roots(Poly(out.gram_charpoly));
  }
  return out;
}

}  // namespace ccmx::la
