// Exact determinant by Chinese remaindering.
//
// Ablation baseline for Bareiss (DESIGN.md): compute det mod p_i for enough
// word-sized primes that prod p_i exceeds twice the Hadamard bound, then
// reconstruct the signed integer by CRT.  The per-prime eliminations are
// independent, so they shard across threads with util::parallel_for — the
// classic HPC structure of exact linear algebra, and the same mod-p kernel
// the fingerprint protocol runs (one prime = one protocol execution).
#pragma once

#include "bigint/bigint.hpp"
#include "linalg/convert.hpp"

namespace ccmx::la {

/// det(m), exact, via CRT over 62-bit primes.  Matches det_bareiss.
[[nodiscard]] num::BigInt det_crt(const IntMatrix& m);

/// Number of 62-bit primes det_crt will use for this matrix (cost model).
[[nodiscard]] std::size_t det_crt_prime_count(const IntMatrix& m);

}  // namespace ccmx::la
