#include "linalg/fp.hpp"

#include "bigint/modular.hpp"
#include "util/require.hpp"

namespace ccmx::la {

namespace {

using num::invmod;
using num::mulmod;

/// In-place elimination to row echelon form; returns (rank, det-accumulator).
/// The determinant accumulator is only meaningful for square inputs.
std::pair<std::size_t, std::uint64_t> echelon(ModMatrix& a, std::uint64_t p) {
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::uint64_t det = 1;
  std::size_t row = 0;
  for (std::size_t col = 0; col < cols && row < rows; ++col) {
    std::size_t pivot = row;
    while (pivot < rows && a(pivot, col) == 0) ++pivot;
    if (pivot == rows) {
      det = 0;  // a zero column means a zero pivot for square inputs
      continue;
    }
    if (pivot != row) {
      a.swap_rows(pivot, row);
      det = det == 0 ? 0 : p - det;  // row swap flips the sign
      if (det == p) det = 0;
    }
    const std::uint64_t inv = invmod(a(row, col), p);
    det = mulmod(det, a(row, col), p);
    for (std::size_t i = row + 1; i < rows; ++i) {
      if (a(i, col) == 0) continue;
      const std::uint64_t factor = mulmod(a(i, col), inv, p);
      for (std::size_t j = col; j < cols; ++j) {
        const std::uint64_t sub = mulmod(factor, a(row, j), p);
        a(i, j) = a(i, j) >= sub ? a(i, j) - sub : a(i, j) + p - sub;
      }
    }
    ++row;
  }
  return {row, det};
}

}  // namespace

std::uint64_t det_mod_p(ModMatrix m, std::uint64_t p) {
  CCMX_REQUIRE(m.is_square(), "determinant of a non-square matrix");
  CCMX_REQUIRE(p >= 2, "modulus must be at least 2");
  auto [rank, det] = echelon(m, p);
  return rank == m.rows() ? det : 0;
}

std::size_t rank_mod_p(ModMatrix m, std::uint64_t p) {
  CCMX_REQUIRE(p >= 2, "modulus must be at least 2");
  return echelon(m, p).first;
}

std::optional<std::vector<std::uint64_t>> solve_mod_p(
    ModMatrix m, std::vector<std::uint64_t> b, std::uint64_t p) {
  CCMX_REQUIRE(b.size() == m.rows(), "solve shape mismatch");
  const std::size_t cols = m.cols();
  ModMatrix augmented(m.rows(), cols + 1);
  augmented.set_block(0, 0, m);
  for (std::size_t i = 0; i < m.rows(); ++i) augmented(i, cols) = b[i] % p;
  // Full Gauss-Jordan on the augmented system.
  const std::size_t rows = augmented.rows();
  std::vector<std::size_t> pivot_cols;
  std::size_t row = 0;
  for (std::size_t col = 0; col < cols + 1 && row < rows; ++col) {
    std::size_t pivot = row;
    while (pivot < rows && augmented(pivot, col) == 0) ++pivot;
    if (pivot == rows) continue;
    augmented.swap_rows(pivot, row);
    const std::uint64_t inv = invmod(augmented(row, col), p);
    for (std::size_t j = col; j <= cols; ++j) {
      augmented(row, j) = mulmod(augmented(row, j), inv, p);
    }
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == row || augmented(i, col) == 0) continue;
      const std::uint64_t factor = augmented(i, col);
      for (std::size_t j = col; j <= cols; ++j) {
        const std::uint64_t sub = mulmod(factor, augmented(row, j), p);
        augmented(i, j) = augmented(i, j) >= sub ? augmented(i, j) - sub
                                                 : augmented(i, j) + p - sub;
      }
    }
    pivot_cols.push_back(col);
    ++row;
  }
  for (const std::size_t c : pivot_cols) {
    if (c == cols) return std::nullopt;  // pivot in the RHS column
  }
  std::vector<std::uint64_t> x(cols, 0);
  for (std::size_t r = 0; r < pivot_cols.size(); ++r) {
    x[pivot_cols[r]] = augmented(r, cols);
  }
  return x;
}

ModMatrix multiply_mod_p(const ModMatrix& a, const ModMatrix& b,
                         std::uint64_t p) {
  CCMX_REQUIRE(a.cols() == b.rows(), "product shape mismatch");
  ModMatrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      if (a(i, k) == 0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) = (out(i, j) + mulmod(a(i, k), b(k, j), p)) % p;
      }
    }
  }
  return out;
}

std::vector<std::uint64_t> multiply_mod_p(const ModMatrix& a,
                                          const std::vector<std::uint64_t>& x,
                                          std::uint64_t p) {
  CCMX_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<std::uint64_t> out(a.rows(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out[i] = (out[i] + mulmod(a(i, j), x[j], p)) % p;
    }
  }
  return out;
}

}  // namespace ccmx::la
