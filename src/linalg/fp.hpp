// Linear algebra over the prime field Z_p, p < 2^62.
//
// This is the arithmetic the probabilistic protocols run: an agent reduces
// its half of the matrix mod a public random prime, ships the residues, and
// the receiver decides singularity / rank / solvability in Z_p.  Plain
// Gaussian elimination with 128-bit products — no fraction growth.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/convert.hpp"

namespace ccmx::la {

/// det(m) mod p.  Requires square m with entries already reduced mod p.
[[nodiscard]] std::uint64_t det_mod_p(ModMatrix m, std::uint64_t p);

/// rank of m over Z_p.
[[nodiscard]] std::size_t rank_mod_p(ModMatrix m, std::uint64_t p);

/// Solves m x = b over Z_p; nullopt when inconsistent.
[[nodiscard]] std::optional<std::vector<std::uint64_t>> solve_mod_p(
    ModMatrix m, std::vector<std::uint64_t> b, std::uint64_t p);

/// Product over Z_p.
[[nodiscard]] ModMatrix multiply_mod_p(const ModMatrix& a, const ModMatrix& b,
                                       std::uint64_t p);

/// Matrix-vector product over Z_p.
[[nodiscard]] std::vector<std::uint64_t> multiply_mod_p(
    const ModMatrix& a, const std::vector<std::uint64_t>& x, std::uint64_t p);

}  // namespace ccmx::la
