#include "linalg/solve_crt.hpp"

#include <cmath>

#include "bigint/modular.hpp"
#include "linalg/det.hpp"
#include "linalg/fp.hpp"
#include "linalg/rref.hpp"
#include "util/narrow.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace ccmx::la {

using num::BigInt;
using num::Rational;

std::optional<Rational> rational_reconstruct(const BigInt& value,
                                             const BigInt& modulus,
                                             const BigInt& bound) {
  CCMX_REQUIRE(modulus > BigInt(1), "modulus must exceed 1");
  CCMX_REQUIRE(bound > BigInt(0), "bound must be positive");
  const BigInt v = BigInt::mod_floor(value, modulus);
  // Wang's algorithm: run Euclid on (m, v), tracking the Bezout coefficient
  // of v; stop at the first remainder <= bound.
  BigInt r0 = modulus, r1 = v;
  BigInt t0(0), t1(1);
  while (!r1.is_zero() && r1 > bound) {
    const auto [q, rem] = BigInt::divmod(r0, r1);
    r0 = r1;
    r1 = rem;
    BigInt next_t = t0 - q * t1;
    t0 = t1;
    t1 = std::move(next_t);
  }
  if (t1.is_zero()) return std::nullopt;
  BigInt num = r1, den = t1;
  if (den.is_negative()) {
    num = -num;
    den = -den;
  }
  if (den > bound || num.abs() > bound) return std::nullopt;
  if (BigInt::gcd(num, den) != BigInt(1)) return std::nullopt;
  // Safety: num ≡ value * den (mod modulus).
  if (!BigInt::mod_floor(num - v * den, modulus).is_zero()) {
    return std::nullopt;
  }
  return Rational(num, den);
}

namespace {

std::size_t max_entry_bits(const IntMatrix& a, const std::vector<BigInt>& b) {
  std::size_t bits = 1;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      bits = std::max(bits, a(i, j).bit_length());
    }
  }
  for (const BigInt& v : b) bits = std::max(bits, v.bit_length());
  return bits;
}

}  // namespace

std::optional<std::vector<Rational>> solve_crt(const IntMatrix& a,
                                               const std::vector<BigInt>& b) {
  CCMX_REQUIRE(a.is_square(), "solve_crt needs a square system");
  CCMX_REQUIRE(b.size() == a.rows(), "solve_crt shape mismatch");
  const std::size_t n = a.rows();
  if (n == 0) return std::vector<Rational>{};

  // Cramer bound: numerators and denominator are determinants of matrices
  // with entries of `k` bits, so both are below 2^H with H = Hadamard bits.
  const auto k = util::narrow_cast<unsigned>(
      std::min<std::size_t>(62, max_entry_bits(a, b) + 1));
  const std::size_t h_bits = hadamard_det_bits(n, k) + 1;
  // Reconstruction needs 2 * bound^2 < modulus: ~2H + 2 bits of primes.
  const std::size_t needed_bits = 2 * h_bits + 4;
  const std::size_t good_needed = needed_bits / 61 + 1;
  // det != 0 has at most h_bits/61 + 1 prime factors in the ladder; seeing
  // more zero-determinant primes proves singularity.
  const std::size_t max_bad = h_bits / 61 + 1;

  std::vector<std::uint64_t> good_primes;
  std::vector<std::vector<std::uint64_t>> solutions;
  std::size_t bad = 0;
  std::uint64_t cursor = (std::uint64_t{1} << 61) + 1;
  while (good_primes.size() < good_needed) {
    cursor = num::next_prime(cursor);
    const std::uint64_t p = cursor;
    cursor += 2;
    const ModMatrix reduced = reduce_mod(a, p);
    if (det_mod_p(reduced, p) == 0) {
      if (++bad > max_bad) return std::nullopt;  // provably singular
      continue;
    }
    std::vector<std::uint64_t> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = b[i].mod_floor_u64(p);
    }
    auto solution = solve_mod_p(reduced, std::move(rhs), p);
    CCMX_ASSERT(solution.has_value());  // nonsingular mod p
    good_primes.push_back(p);
    solutions.push_back(std::move(*solution));
  }

  // CRT-combine each coordinate (coordinates are independent: shard them).
  const BigInt bound = BigInt::pow2(util::narrow_cast<unsigned>(h_bits));
  std::vector<std::optional<Rational>> recovered(n);
  util::parallel_for(0, n, [&](std::size_t j) {
    BigInt value(static_cast<std::int64_t>(solutions[0][j]));
    BigInt modulus(static_cast<std::int64_t>(good_primes[0]));
    for (std::size_t i = 1; i < good_primes.size(); ++i) {
      const std::uint64_t p = good_primes[i];
      const std::uint64_t value_mod_p = value.mod_u64(p);
      const std::uint64_t diff = solutions[i][j] >= value_mod_p
                                     ? solutions[i][j] - value_mod_p
                                     : solutions[i][j] + p - value_mod_p;
      const std::uint64_t inv = num::invmod(modulus.mod_u64(p), p);
      const std::uint64_t delta = num::mulmod(diff, inv, p);
      // 62-bit delta and p: fused word-sized CRT fold, no temporaries.
      value.add_mul(modulus, static_cast<std::int64_t>(delta));
      modulus *= static_cast<std::int64_t>(p);
    }
    recovered[j] = rational_reconstruct(value, modulus, bound);
  });

  std::vector<Rational> x;
  x.reserve(n);
  bool all_recovered = true;
  for (const auto& r : recovered) {
    if (!r) {
      all_recovered = false;
      break;
    }
    x.push_back(*r);
  }
  if (all_recovered) {
    // Exact verification: A x == b.
    const auto ax = multiply(to_rational(a), x);
    bool verified = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (ax[i] != Rational(b[i])) {
        verified = false;
        break;
      }
    }
    if (verified) return x;
  }
  // Fallback (should not trigger with the Cramer sizing): exact RREF solve.
  std::vector<Rational> rhs;
  rhs.reserve(n);
  for (const BigInt& v : b) rhs.emplace_back(v);
  return la::solve(to_rational(a), rhs);
}

}  // namespace ccmx::la
