#include "linalg/rref.hpp"

#include "util/require.hpp"

namespace ccmx::la {

using num::BigInt;
using num::Rational;

RrefResult rref(const RatMatrix& m) {
  RrefResult out;
  out.rref = m;
  RatMatrix& a = out.rref;
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::size_t lead = 0;
  for (std::size_t c = 0; c < cols && lead < rows; ++c) {
    // Find a pivot in column c at or below row `lead`.
    std::size_t pivot = lead;
    while (pivot < rows && a(pivot, c).is_zero()) ++pivot;
    if (pivot == rows) continue;
    a.swap_rows(pivot, lead);
    const Rational inv = a(lead, c).reciprocal();
    for (std::size_t j = c; j < cols; ++j) a(lead, j) *= inv;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == lead || a(i, c).is_zero()) continue;
      const Rational factor = a(i, c);
      for (std::size_t j = c; j < cols; ++j) {
        a(i, j) -= factor * a(lead, j);
      }
    }
    out.pivot_cols.push_back(c);
    ++lead;
  }
  return out;
}

std::size_t rank(const IntMatrix& m) {
  // Fraction-free elimination with full pivoting; counts pivots.
  IntMatrix a = m;
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  BigInt prev(1);
  std::size_t r = 0;
  for (std::size_t k = 0; k < std::min(rows, cols); ++k) {
    // Full pivot search over the trailing block.
    std::size_t pi = rows, pj = cols;
    for (std::size_t i = k; i < rows && pi == rows; ++i) {
      for (std::size_t j = k; j < cols; ++j) {
        if (!a(i, j).is_zero()) {
          pi = i;
          pj = j;
          break;
        }
      }
    }
    if (pi == rows) break;  // trailing block is zero
    a.swap_rows(pi, k);
    a.swap_cols(pj, k);
    for (std::size_t i = k + 1; i < rows; ++i) {
      for (std::size_t j = k + 1; j < cols; ++j) {
        BigInt value = a(k, k) * a(i, j) - a(i, k) * a(k, j);
        a(i, j) = value.divide_exact(prev);
      }
      a(i, k) = BigInt(0);
    }
    prev = a(k, k);
    ++r;
  }
  return r;
}

std::size_t rank(const RatMatrix& m) { return rref(m).rank(); }

std::vector<std::vector<Rational>> nullspace(const RatMatrix& m) {
  const RrefResult result = rref(m);
  const std::size_t cols = m.cols();
  std::vector<bool> is_pivot(cols, false);
  for (const std::size_t c : result.pivot_cols) is_pivot[c] = true;

  std::vector<std::vector<Rational>> basis;
  for (std::size_t free_col = 0; free_col < cols; ++free_col) {
    if (is_pivot[free_col]) continue;
    std::vector<Rational> v(cols, Rational(0));
    v[free_col] = Rational(1);
    // Back-substitute: pivot row r has its pivot at pivot_cols[r].
    for (std::size_t r = 0; r < result.pivot_cols.size(); ++r) {
      v[result.pivot_cols[r]] = -result.rref(r, free_col);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<std::vector<Rational>> solve(const RatMatrix& m,
                                           const std::vector<Rational>& b) {
  CCMX_REQUIRE(b.size() == m.rows(), "solve shape mismatch");
  RatMatrix augmented(m.rows(), m.cols() + 1);
  augmented.set_block(0, 0, m);
  for (std::size_t i = 0; i < m.rows(); ++i) augmented(i, m.cols()) = b[i];
  const RrefResult result = rref(augmented);
  // Inconsistent iff some pivot lands in the augmented column.
  for (const std::size_t c : result.pivot_cols) {
    if (c == m.cols()) return std::nullopt;
  }
  std::vector<Rational> x(m.cols(), Rational(0));
  for (std::size_t r = 0; r < result.pivot_cols.size(); ++r) {
    x[result.pivot_cols[r]] = result.rref(r, m.cols());
  }
  return x;
}

bool in_column_span(const RatMatrix& m, const std::vector<Rational>& v) {
  return solve(m, v).has_value();
}

RatMatrix column_span_canonical(const RatMatrix& m) {
  const RrefResult result = rref(m.transpose());
  return result.rref.block(0, 0, result.rank(), m.rows());
}

bool same_column_span(const RatMatrix& a, const RatMatrix& b) {
  CCMX_REQUIRE(a.rows() == b.rows(), "spans live in different ambient spaces");
  return column_span_canonical(a) == column_span_canonical(b);
}

std::size_t span_intersection_dim(const RatMatrix& a, const RatMatrix& b) {
  CCMX_REQUIRE(a.rows() == b.rows(), "spans live in different ambient spaces");
  const std::size_t ra = rank(a);
  const std::size_t rb = rank(b);
  const std::size_t runion = rank(a.augment(b));
  return ra + rb - runion;
}

}  // namespace ccmx::la
