// Exact characteristic polynomials via the Faddeev-LeVerrier recurrence.
//
// Used by the SVD-structure computation (Corollary 1.2(d)): the squared
// singular values of A are the eigenvalues of A^T A, and the multiplicity of
// the zero root of charpoly(A^T A) — read off exactly from the trailing zero
// coefficients — gives the number of zero singular values without ever
// leaving Q.
#pragma once

#include <vector>

#include "linalg/convert.hpp"

namespace ccmx::la {

/// Coefficients c of det(xI - M) = x^n + c[1] x^{n-1} + ... + c[n],
/// returned as [1, c1, .., cn] (monic, degree n, length n + 1).
[[nodiscard]] std::vector<num::Rational> charpoly(const RatMatrix& m);

/// Multiplicity of the root x = 0, i.e. the number of trailing zero
/// coefficients of the characteristic polynomial.
[[nodiscard]] std::size_t zero_root_multiplicity(
    const std::vector<num::Rational>& monic_coeffs);

}  // namespace ccmx::la
