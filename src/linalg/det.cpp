#include "linalg/det.hpp"

#include <cmath>

#include "util/require.hpp"

namespace ccmx::la {

using num::BigInt;

BigInt det_bareiss(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "determinant of a non-square matrix");
  const std::size_t n = m.rows();
  if (n == 0) return BigInt(1);
  IntMatrix a = m;
  BigInt prev(1);
  int sign = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    // Partial pivoting on the first nonzero entry of column k.
    std::size_t pivot = k;
    while (pivot < n && a(pivot, k).is_zero()) ++pivot;
    if (pivot == n) return BigInt(0);
    if (pivot != k) {
      a.swap_rows(pivot, k);
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      for (std::size_t j = k + 1; j < n; ++j) {
        BigInt value = a(k, k) * a(i, j) - a(i, k) * a(k, j);
        a(i, j) = value.divide_exact(prev);
      }
      a(i, k) = BigInt(0);
    }
    prev = a(k, k);
  }
  BigInt result = a(n - 1, n - 1);
  if (sign < 0) result = -result;
  return result;
}

BigInt det_cofactor(const IntMatrix& m) {
  CCMX_REQUIRE(m.is_square(), "determinant of a non-square matrix");
  const std::size_t n = m.rows();
  CCMX_REQUIRE(n <= 10, "cofactor oracle limited to n <= 10");
  if (n == 0) return BigInt(1);
  if (n == 1) return m(0, 0);
  BigInt total(0);
  for (std::size_t j = 0; j < n; ++j) {
    if (m(0, j).is_zero()) continue;
    const BigInt sub = det_cofactor(m.minor_matrix(0, j));
    if (j % 2 == 0) {
      total += m(0, j) * sub;
    } else {
      total -= m(0, j) * sub;
    }
  }
  return total;
}

bool is_singular(const IntMatrix& m) { return det_bareiss(m).is_zero(); }

std::size_t hadamard_det_bits(std::size_t n, unsigned k) {
  // |det| <= (2^k * sqrt(n))^n  =>  bits <= n * (k + log2(n)/2) + 1.
  const double bits =
      static_cast<double>(n) *
          (static_cast<double>(k) +
           0.5 * std::log2(static_cast<double>(n == 0 ? 1 : n))) +
      1.0;
  return static_cast<std::size_t>(std::ceil(bits));
}

}  // namespace ccmx::la
